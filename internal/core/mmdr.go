// Package core implements the paper's contribution: the Multi-level
// Mahalanobis-based Dimensionality Reduction (MMDR) algorithm (Figure 4)
// and its scalable, stream-based variant (§4.3).
//
// MMDR runs in two phases:
//
//  1. Generate Ellipsoid (GE): recursively project the data onto a low
//     s_dim-dimensional PCA subspace, cluster the projections with
//     elliptical k-means (Mahalanobis distance), and for every discovered
//     semi-ellipsoid check — via the Mean Projection Error (MPE) — whether
//     its local s_dim-dimensional subspace represents it faithfully. Those
//     that fail are re-clustered at doubled subspace dimensionality.
//  2. Dimensionality Optimization (DO): for each accepted ellipsoid, shrink
//     the retained dimensionality d_r one dimension at a time while the MPE
//     increase stays below a threshold, then classify members whose
//     projection distance exceeds β as outliers.
//
// The output is a reduction.Result: a set of reduced subspaces, each in its
// own axis system, plus the outlier set kept in the original space.
package core

import (
	"fmt"
	"sort"

	"mmdr/internal/dataset"
	"mmdr/internal/ellipkmeans"
	"mmdr/internal/iostat"
	"mmdr/internal/matrix"
	"mmdr/internal/obs"
	"mmdr/internal/pool"
	"mmdr/internal/reduction"
	"mmdr/internal/stats"
)

// Params carries the MMDR knobs; zero fields take the paper's Table 1
// defaults (see DefaultParams).
type Params struct {
	// SDim is the initial subspace dimensionality for Generate Ellipsoid.
	// The paper's walkthrough starts at 1-2; default 2.
	SDim int
	// Beta is the ProjDist_r threshold β: members whose projection distance
	// exceeds it become outliers. Table 1 default 0.1.
	Beta float64
	// MaxMPE is the maximum mean projection error for a semi-ellipsoid to
	// be accepted at the current s_dim. Table 1 default 0.05.
	MaxMPE float64
	// MaxEC is the number of clusters per elliptical k-means invocation.
	// Table 1 default 10.
	MaxEC int
	// MaxDim caps the retained dimensionality. Table 1 default 20.
	MaxDim int
	// MPEDelta is the Dimensionality Optimization stop threshold: d_r keeps
	// decreasing while dropping one more dimension costs less than this
	// fraction of the cluster's own variance. Measured cluster-relative —
	// unlike the discovery gates — so small clusters keep their intrinsic
	// dimensionality (see DESIGN.md). Default 0.02.
	MPEDelta float64
	// MinClusterSize routes tiny semi-ellipsoids straight to the outlier
	// set (a cluster of a handful of points has no meaningful shape).
	// Default 10.
	MinClusterSize int
	// LookupK and ActivityThreshold enable the §4.2 distance-computation
	// optimizations inside elliptical k-means. Table 1: k = 3; the paper's
	// scalability experiments use 10 iterations for inactivity.
	LookupK           int
	ActivityThreshold int
	// ForcedDim, when positive, forces every subspace to that retained
	// dimensionality — used by the dimensionality-sweep experiments
	// (Figures 8-10). Dimensionality Optimization is skipped.
	ForcedDim int
	// Epsilon is the data-stream fraction ε for Scalable MMDR. Table 1
	// default 0.005.
	Epsilon float64
	// Xi caps the β-based outlier evictions at Xi·N (Table 1: outlier
	// percentage ξ = 0.005). Points beyond the cap stay in their subspace
	// with their (larger) projection error. Structural outliers — groups
	// too small to form an ellipsoid — are not subject to the cap.
	Xi float64
	// RawMahalanobis switches elliptical k-means from the normalized
	// Mahalanobis distance (the paper's default, Definition 3.2) to the raw
	// quadratic form. Kept as an ablation knob: with the raw distance,
	// large clusters swallow small ones.
	RawMahalanobis bool
	// Seed makes runs reproducible.
	Seed int64
	// RidgeScale regularizes degenerate covariances (default 1e-6).
	RidgeScale float64
	// Parallelism bounds the worker goroutines used across the pipeline:
	// elliptical k-means (assignment, covariance fits, restarts), the
	// projection loops, the per-cluster PCA fan-out in Generate Ellipsoid,
	// and the per-ellipsoid work of Dimensionality Optimization. Values <= 1
	// run the exact serial code path. Results are identical at every
	// setting — work is partitioned by index and every floating-point
	// reduction happens in serial order. Note that with Parallelism > 1 the
	// clustering restarts run with a nil Tracer (Tracer is single-goroutine
	// by contract), so full clustering telemetry requires Parallelism <= 1.
	Parallelism int
	// Counter, when non-nil, accumulates distance-op and simulated-I/O
	// costs across the run. Counter and AtomicCounter both satisfy it.
	Counter iostat.Sink
	// Tracer, when non-nil, receives the phase/span telemetry of the run:
	// one span per Generate-Ellipsoid recursion level (with its clustering
	// nested inside), the merge pass, and Dimensionality Optimization with
	// outlier separation. A nil Tracer costs nothing.
	Tracer obs.Tracer
}

// DefaultParams returns the paper's Table 1 defaults.
func DefaultParams() Params {
	return Params{
		SDim:              2,
		Beta:              0.1,
		MaxMPE:            0.05,
		MaxEC:             10,
		MaxDim:            20,
		MPEDelta:          0.02,
		MinClusterSize:    10,
		LookupK:           3,
		ActivityThreshold: 10,
		Epsilon:           0.005,
		Xi:                0.005,
		RidgeScale:        1e-6,
	}
}

func (p Params) withDefaults() Params {
	def := DefaultParams()
	if p.SDim <= 0 {
		p.SDim = def.SDim
	}
	if p.Beta <= 0 {
		p.Beta = def.Beta
	}
	if p.MaxMPE <= 0 {
		p.MaxMPE = def.MaxMPE
	}
	if p.MaxEC <= 0 {
		p.MaxEC = def.MaxEC
	}
	if p.MaxDim <= 0 {
		p.MaxDim = def.MaxDim
	}
	if p.MPEDelta <= 0 {
		p.MPEDelta = def.MPEDelta
	}
	if p.MinClusterSize <= 0 {
		p.MinClusterSize = def.MinClusterSize
	}
	if p.LookupK <= 0 {
		p.LookupK = def.LookupK
	}
	if p.ActivityThreshold <= 0 {
		p.ActivityThreshold = def.ActivityThreshold
	}
	if p.Epsilon <= 0 {
		p.Epsilon = def.Epsilon
	}
	if p.Xi <= 0 {
		p.Xi = def.Xi
	}
	if p.RidgeScale <= 0 {
		p.RidgeScale = def.RidgeScale
	}
	return p
}

// MMDR is the reducer; it implements reduction.Reducer.
type MMDR struct {
	Params Params
}

// New returns an MMDR reducer with the given parameters (zero-value fields
// take Table 1 defaults).
func New(params Params) *MMDR { return &MMDR{Params: params} }

// Name implements reduction.Reducer.
func (m *MMDR) Name() string { return "MMDR" }

// ellipsoid is a semi-ellipsoid accepted by Generate Ellipsoid: a member
// set whose local sdim-dimensional subspace represents it within MaxMPE.
type ellipsoid struct {
	members []int // indices into the source dataset
	sdim    int   // subspace dimensionality at acceptance
	pca     *stats.PCA
}

// Reduce implements reduction.Reducer: the full MMDR pipeline.
func (m *MMDR) Reduce(ds *dataset.Dataset) (*reduction.Result, error) {
	p := m.Params.withDefaults()
	if ds.N == 0 {
		return nil, fmt.Errorf("mmdr: empty dataset")
	}
	obs.Begin(p.Tracer, obs.PhaseReduce)
	obs.Attr(p.Tracer, "points", float64(ds.N))
	obs.Attr(p.Tracer, "dim", float64(ds.Dim))
	defer obs.End(p.Tracer)
	all := make([]int, ds.N)
	for i := range all {
		all[i] = i
	}
	gscale := globalScale(ds)
	var outliers []int
	ellipsoids, err := generateEllipsoid(ds, all, p.SDim, p, &outliers, true, gscale)
	if err != nil {
		return nil, err
	}
	// The GE recursion fragments coherent ellipsoids (k-means always
	// returns MaxEC non-empty partitions); coalesce fragments that fit each
	// other's subspaces before optimizing dimensionality.
	obs.Begin(p.Tracer, obs.PhaseMerge)
	obs.Attr(p.Tracer, "ellipsoids_in", float64(len(ellipsoids)))
	ellipsoids, err = mergeEllipsoids(ds, ellipsoids, p, gscale)
	if err != nil {
		obs.End(p.Tracer)
		return nil, err
	}
	obs.Attr(p.Tracer, "ellipsoids_out", float64(len(ellipsoids)))
	obs.End(p.Tracer)
	return dimensionalityOptimization(ds, ellipsoids, outliers, p, gscale)
}

// generateEllipsoid is the GE recursion of Figure 4. indices is the current
// point subset; sdim the subspace dimensionality for this level; top marks
// the initial invocation. Accepted ellipsoids are returned; degenerate
// groups go to outliers.
//
// Two refinements over the paper's pseudo-code keep the recursion from
// shattering coherent clusters (see DESIGN.md):
//
//   - A subset already representable at sdim (residual-energy fraction
//     within MaxMPE) is accepted whole, without further clustering — the
//     paper's "single cluster whose s_dim was too small" case.
//   - Below the top level the clustering is a binary refinement (k = 2)
//     rather than MaxEC-way: the recursion's job there is to separate the
//     few clusters that overlapped at the coarser projection, and k-means
//     always returns k non-empty partitions even for one coherent cluster.
func generateEllipsoid(ds *dataset.Dataset, indices []int, sdim int, p Params, outliers *[]int, top bool, gscale float64) ([]ellipsoid, error) {
	d := ds.Dim
	if sdim > d {
		sdim = d
	}
	if len(indices) < p.MinClusterSize {
		*outliers = append(*outliers, indices...)
		return nil, nil
	}

	// One span per recursion level; the level's clustering nests inside.
	obs.Begin(p.Tracer, obs.PhaseGenerate)
	obs.Attr(p.Tracer, "sdim", float64(sdim))
	obs.Attr(p.Tracer, "points", float64(len(indices)))
	defer obs.End(p.Tracer)

	// Line 1: multi-level projection of this subset onto its top-sdim PCA
	// subspace.
	sub := ds.Subset(indices)
	pca, err := stats.ComputePCA(sub.Data, d)
	if err != nil {
		return nil, err
	}

	// Accept-whole check: this subset is a single acceptable ellipsoid.
	// MPE is measured as the RMS distance to the subspace relative to the
	// dataset's global RMS scale — the scale-invariant form of the paper's
	// absolute MaxMPE on [0,1]-normalized data (see DESIGN.md).
	if pca.TailRMS(sdim) <= p.MaxMPE*gscale || sdim >= d {
		obs.Attr(p.Tracer, "accepted_whole", 1)
		return []ellipsoid{{members: append([]int(nil), indices...), sdim: sdim, pca: pca}}, nil
	}

	proj := dataset.New(sub.N, sdim)
	pool.Chunks(p.Parallelism, sub.N, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pca.ProjectInto(sub.Point(i), proj.Point(i))
		}
	})

	// Line 2: elliptical k-means in the sdim-dimensional subspace.
	k := 2
	if top {
		k = p.MaxEC
	}
	if max := sub.N / p.MinClusterSize; k > max {
		k = max
	}
	if k < 1 {
		k = 1
	}
	ek, err := ellipkmeans.Run(proj, ellipkmeans.Options{
		K:                 k,
		Seed:              p.Seed + int64(sdim)*101,
		Normalized:        !p.RawMahalanobis,
		UseLookupTable:    true,
		LookupK:           p.LookupK,
		ActivityThreshold: p.ActivityThreshold,
		RidgeScale:        p.RidgeScale,
		Counter:           p.Counter,
		Tracer:            p.Tracer,
		Parallelism:       p.Parallelism,
	})
	if err != nil {
		return nil, err
	}

	// Restore every semi-ellipsoid's member set in the original space
	// (line 5) before the handling walk, so the per-cluster local PCAs —
	// the expensive part of lines 6-7 — can be computed concurrently.
	// Classification, recursion, and the outlier appends stay serial in
	// cluster order, so the output is identical at every parallelism.
	clusterMembers := make([][]int, ek.K)
	for c := 0; c < ek.K; c++ {
		local := ek.Members(c)
		if len(local) == 0 {
			continue
		}
		members := make([]int, len(local))
		for i, li := range local {
			members[i] = indices[li]
		}
		clusterMembers[c] = members
	}
	localPCAs := make([]*stats.PCA, ek.K)
	pcaErrs := make([]error, ek.K)
	pool.Run(p.Parallelism, ek.K, func(c int) {
		members := clusterMembers[c]
		// Only clusters that reach line 6 of the serial walk need a local
		// PCA: large enough, and not a degenerate one-partition split.
		if len(members) < p.MinClusterSize || len(members) == len(indices) {
			return
		}
		localPCAs[c], pcaErrs[c] = stats.ComputePCA(ds.Subset(members).Data, d)
	})

	// Lines 3-11: handle each semi-ellipsoid.
	var out []ellipsoid
	for c := 0; c < ek.K; c++ {
		members := clusterMembers[c]
		if members == nil {
			continue
		}
		if len(members) < p.MinClusterSize {
			*outliers = append(*outliers, members...)
			continue
		}
		// Degenerate split (everything in one partition): re-enter at the
		// doubled dimensionality rather than looping at this level.
		if len(members) == len(indices) {
			if 2*sdim > d {
				out = append(out, ellipsoid{members: members, sdim: sdim, pca: pca})
				continue
			}
			children, err := generateEllipsoid(ds, members, 2*sdim, p, outliers, false, gscale)
			if err != nil {
				return nil, err
			}
			out = append(out, children...)
			continue
		}
		// Line 6: local projections of this semi-ellipsoid.
		localPCA := localPCAs[c]
		if pcaErrs[c] != nil {
			return nil, pcaErrs[c]
		}
		// Line 7: MPE of the local sdim-dimensional subspace, measured as
		// the residual-energy fraction so the gate is scale-invariant (see
		// DESIGN.md — the paper's absolute 0.05 presupposes unit-scale
		// data).
		mpe := localPCA.TailRMS(sdim)

		// Line 8-9 (with the corrected guard, see DESIGN.md): recurse at
		// doubled subspace dimensionality while the subspace loses too much
		// information and doubling stays within the original
		// dimensionality.
		if mpe > p.MaxMPE*gscale && 2*sdim <= d {
			children, err := generateEllipsoid(ds, members, 2*sdim, p, outliers, false, gscale)
			if err != nil {
				return nil, err
			}
			out = append(out, children...)
			continue
		}
		// Line 11: accept.
		out = append(out, ellipsoid{members: members, sdim: sdim, pca: localPCA})
	}
	obs.Attr(p.Tracer, "accepted", float64(len(out)))
	return out, nil
}

// dimensionalityOptimization is the DO phase of Figure 4 (lines 12-24):
// per-ellipsoid optimal dimensionality search followed by β-based outlier
// separation.
func dimensionalityOptimization(ds *dataset.Dataset, ellipsoids []ellipsoid, outliers []int, p Params, gscale float64) (*reduction.Result, error) {
	res := &reduction.Result{Dim: ds.Dim}
	obs.Begin(p.Tracer, obs.PhaseDimOpt)
	obs.Attr(p.Tracer, "ellipsoids", float64(len(ellipsoids)))
	defer obs.End(p.Tracer)

	// Lines 18-24: per ellipsoid, pick d_r and flag members whose
	// ProjDist_r exceeds β as eviction candidates. The total eviction is
	// capped at ξ·N (Table 1's outlier percentage): only the worst
	// residuals actually leave their subspace.
	type candidate struct {
		ell      int
		member   int // index into the source dataset
		residual float64
	}
	// The d_r search and the residual scan are independent per ellipsoid;
	// fan them out with per-ellipsoid candidate lists, then concatenate in
	// ellipsoid order — the exact sequence the serial loop produces.
	drs := make([]int, len(ellipsoids))
	perEll := make([][]candidate, len(ellipsoids))
	pool.Run(p.Parallelism, len(ellipsoids), func(ei int) {
		e := ellipsoids[ei]
		drs[ei] = chooseDr(e, ds.Dim, p, gscale)
		for _, mIdx := range e.members {
			if r := e.pca.Residual(ds.Point(mIdx), drs[ei]); r > p.Beta {
				perEll[ei] = append(perEll[ei], candidate{ell: ei, member: mIdx, residual: r})
			}
		}
	})
	var cands []candidate
	for _, pc := range perEll {
		cands = append(cands, pc...)
	}
	obs.Begin(p.Tracer, obs.PhaseOutliers)
	obs.Attr(p.Tracer, "candidates", float64(len(cands)))
	maxEvict := int(p.Xi * float64(ds.N))
	evicted := make(map[int]bool, maxEvict)
	if len(cands) > maxEvict {
		sort.Slice(cands, func(a, b int) bool { return cands[a].residual > cands[b].residual })
		cands = cands[:maxEvict]
	}
	for _, c := range cands {
		evicted[c.member] = true
		outliers = append(outliers, c.member)
	}
	obs.Attr(p.Tracer, "evicted", float64(len(cands)))
	obs.Attr(p.Tracer, "budget", float64(maxEvict))
	obs.End(p.Tracer)

	// Subspace IDs and the structural-outlier appends depend on ellipsoid
	// order, so assign them serially first; the per-subspace assembly
	// (projection of every member, covariance fit) then fans out.
	type buildTask struct {
		id   int
		ell  int
		kept []int
	}
	var tasks []buildTask
	for ei, e := range ellipsoids {
		kept := make([]int, 0, len(e.members))
		for _, mIdx := range e.members {
			if !evicted[mIdx] {
				kept = append(kept, mIdx)
			}
		}
		if len(kept) < p.MinClusterSize {
			outliers = append(outliers, kept...)
			continue
		}
		tasks = append(tasks, buildTask{id: len(tasks), ell: ei, kept: kept})
	}
	subs := make([]*reduction.Subspace, len(tasks))
	buildErrs := make([]error, len(tasks))
	pool.Run(p.Parallelism, len(tasks), func(ti int) {
		t := tasks[ti]
		subs[ti], buildErrs[ti] = buildSubspace(t.id, ds, ellipsoids[t.ell].pca, drs[t.ell], t.kept, p.RidgeScale)
	})
	for ti := range tasks {
		if buildErrs[ti] != nil {
			return nil, buildErrs[ti]
		}
		res.Subspaces = append(res.Subspaces, subs[ti])
	}
	res.Outliers = outliers
	obs.Attr(p.Tracer, "subspaces", float64(len(res.Subspaces)))
	obs.Attr(p.Tracer, "outliers", float64(len(res.Outliers)))
	return res, nil
}

// chooseDr implements lines 13-17 of Figure 4 with one deliberate change
// (see DESIGN.md): the search starts from min(MaxDim, d) rather than
// min(MaxDim, s_dim), and the decrement criterion is the *cluster-relative*
// residual-energy increase. The acceptance level s_dim is measured against
// the global data scale, which under-states the dimensionality of small
// clusters; starting from MaxDim and letting the cluster's own spectrum
// decide preserves every cluster's intrinsic axes regardless of its size.
// ForcedDim overrides the search for sweep experiments.
func chooseDr(e ellipsoid, dim int, p Params, gscale float64) int {
	_ = gscale
	if p.ForcedDim > 0 {
		if p.ForcedDim > dim {
			return dim
		}
		return p.ForcedDim
	}
	dr := p.MaxDim
	if dr > dim {
		dr = dim
	}
	if dr < 1 {
		dr = 1
	}
	mpe := e.pca.ResidualEnergyFraction(dr)
	for dr > 1 {
		next := e.pca.ResidualEnergyFraction(dr - 1)
		if next-mpe >= p.MPEDelta {
			break
		}
		dr--
		mpe = next
	}
	return dr
}

// buildSubspace assembles the reduction.Subspace for an optimized
// ellipsoid, including the auxiliary shape information (covariance inverse,
// Mahalanobis radius) the extended iDistance keeps for dynamic insertion.
func buildSubspace(id int, ds *dataset.Dataset, pca *stats.PCA, dr int, members []int, ridgeScale float64) (*reduction.Subspace, error) {
	sub := &reduction.Subspace{
		ID:       id,
		Centroid: pca.Mean,
		Basis:    pca.Components.LeadingCols(dr),
		Dr:       dr,
		Members:  append([]int(nil), members...),
		Coords:   make([]float64, len(members)*dr),
	}
	sub.EnsureKernels()
	var mpeSum, maxR2 float64
	memberData := ds.Subset(members)
	for k := range members {
		pt := memberData.Point(k)
		dst := sub.Coords[k*dr : (k+1)*dr]
		res := sub.ProjectResidualInto(pt, dst)
		n2 := matrix.SqNorm(dst)
		if n2 > maxR2 {
			maxR2 = n2
		}
		mpeSum += sqrtNonNeg(res)
	}
	sub.MaxRadius = sqrtNonNeg(maxR2)
	sub.MPE = mpeSum / float64(len(members))

	g, err := ellipkmeans.NewGaussian(memberData.Data, ds.Dim, ridgeScale)
	if err != nil {
		return nil, err
	}
	sub.CovInv = g.CovInv
	sub.LogDet = g.LogDet
	sub.MahaRadius = g.MahaRadius(memberData.Data)
	// CovInv only exists now: a second pass derives its Cholesky cache.
	sub.EnsureKernels()
	return sub, nil
}

// globalScale returns the dataset's RMS distance to its global mean — the
// scale reference for every MPE gate.
func globalScale(ds *dataset.Dataset) float64 {
	cov, _, err := stats.Covariance(ds.Data, ds.Dim)
	if err != nil {
		return 1
	}
	if t := cov.Trace(); t > 0 {
		return sqrtNonNeg(t)
	}
	return 1
}
