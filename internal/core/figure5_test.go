package core

import (
	"testing"

	"mmdr/internal/datagen"
	"mmdr/internal/query"
	"mmdr/internal/reduction"
)

// TestFigure5Scenario reproduces the paper's Figure 5 argument as an
// executable test: a large elongated cluster plus two smaller dense
// clusters whose subspaces cross it. LDR's Euclidean clustering must use a
// radius large enough to capture the big cluster, which merges the small
// ones into it and loses their subspaces; MMDR's Mahalanobis clustering
// separates all three and yields strictly better query precision.
func TestFigure5Scenario(t *testing.T) {
	dim := 8
	big := datagen.ClusterSpec{
		Size: 3000, SDim: 1, SRDim: 0, VarianceR: 60, VarianceE: 1,
		Center: make([]float64, dim),
	}
	c1 := make([]float64, dim)
	c1[0], c1[1] = 15, 2
	small1 := datagen.ClusterSpec{
		Size: 700, SDim: 1, SRDim: 1, VarianceR: 8, VarianceE: 0.15, Center: c1,
	}
	c2 := make([]float64, dim)
	c2[0], c2[1] = -12, -3
	small2 := datagen.ClusterSpec{
		Size: 700, SDim: 1, SRDim: 2, VarianceR: 8, VarianceE: 0.15, Center: c2,
	}
	ds, _, err := datagen.Correlated(dim, []datagen.ClusterSpec{big, small1, small2}, 61)
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	queries := datagen.SampleQueries(ds, 40, 0, 62)

	mmdrRed, err := New(Params{Seed: 1, MaxEC: 6}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}
	ldrRed, err := (&reduction.LDR{Seed: 1, MaxClusters: 6, MaxDim: 4}).Reduce(ds)
	if err != nil {
		t.Fatal(err)
	}

	mp := query.ReductionPrecision(ds, mmdrRed, queries, 10)
	lp := query.ReductionPrecision(ds, ldrRed, queries, 10)
	if mp <= lp {
		t.Fatalf("Figure 5 scenario: MMDR precision %v should beat LDR %v", mp, lp)
	}
	if mp < 0.6 {
		t.Fatalf("MMDR precision %v unexpectedly low on the Figure 5 layout", mp)
	}
}
