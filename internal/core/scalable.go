package core

import (
	"fmt"
	"math"

	"mmdr/internal/dataset"
	"mmdr/internal/iostat"
	"mmdr/internal/obs"
	"mmdr/internal/reduction"
	"mmdr/internal/stats"
)

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Scalable is the stream-based MMDR of §4.3 for datasets larger than the
// memory buffer: the data is processed one stream of ε·N points at a time,
// Generate Ellipsoid runs per stream, and only the per-stream ellipsoid
// centroids (the Ellipsoid Array) stay in memory. A final Generate
// Ellipsoid pass over the Ellipsoid Array merges small ellipsoids into
// full-size ones, after which Dimensionality Optimization runs on the
// merged member sets.
//
// Each point is read from "disk" exactly once, so the simulated page I/O is
// a single sequential scan regardless of the buffer size — the property
// Figure 11a demonstrates.
type Scalable struct {
	Params Params
}

// Name implements reduction.Reducer.
func (s *Scalable) Name() string { return "MMDR-scalable" }

// Reduce implements reduction.Reducer.
func (s *Scalable) Reduce(ds *dataset.Dataset) (*reduction.Result, error) {
	p := s.Params.withDefaults()
	if ds.N == 0 {
		return nil, fmt.Errorf("mmdr: empty dataset")
	}
	obs.Begin(p.Tracer, obs.PhaseReduce)
	obs.Attr(p.Tracer, "points", float64(ds.N))
	obs.Attr(p.Tracer, "dim", float64(ds.Dim))
	defer obs.End(p.Tracer)
	gscale := globalScale(ds)
	streamSize := int(p.Epsilon * float64(ds.N))
	if streamSize < 4*p.MinClusterSize {
		streamSize = 4 * p.MinClusterSize
	}
	if streamSize > ds.N {
		streamSize = ds.N
	}

	// Phase 1: per-stream Generate Ellipsoid; collect centroids and member
	// lists. Only centroids conceptually stay in memory — member lists
	// stand in for the disk-resident cluster assignment a real system
	// would write alongside the stream.
	type streamEllipsoid struct {
		centroid []float64
		members  []int
	}
	var arr []streamEllipsoid
	var outliers []int
	for lo := 0; lo < ds.N; lo += streamSize {
		hi := lo + streamSize
		if hi > ds.N {
			hi = ds.N
		}
		if p.Counter != nil {
			p.Counter.CountPageReads(iostat.PagesForPoints(hi-lo, ds.Dim))
		}
		obs.Begin(p.Tracer, obs.PhaseStream)
		obs.Attr(p.Tracer, "lo", float64(lo))
		obs.Attr(p.Tracer, "points", float64(hi-lo))
		indices := make([]int, hi-lo)
		for i := range indices {
			indices[i] = lo + i
		}
		ellips, err := generateEllipsoid(ds, indices, p.SDim, p, &outliers, true, gscale)
		if err != nil {
			obs.End(p.Tracer)
			return nil, err
		}
		obs.Attr(p.Tracer, "ellipsoids", float64(len(ellips)))
		obs.End(p.Tracer)
		for _, e := range ellips {
			arr = append(arr, streamEllipsoid{centroid: e.pca.Mean, members: e.members})
		}
	}
	if len(arr) == 0 {
		// Nothing clustered: everything is an outlier.
		return &reduction.Result{Dim: ds.Dim, Outliers: outliers}, nil
	}

	// Phase 2: Generate Ellipsoid over the Ellipsoid Array to merge small
	// ellipsoids into big ones.
	cents := dataset.New(len(arr), ds.Dim)
	for i, se := range arr {
		copy(cents.Point(i), se.centroid)
	}
	groups, err := s.mergeCentroids(cents, p)
	if err != nil {
		return nil, err
	}

	// Phase 3: union the member lists per merged group and run
	// Dimensionality Optimization on the full member sets.
	var ellipsoids []ellipsoid
	for _, g := range groups {
		var members []int
		for _, ei := range g {
			members = append(members, arr[ei].members...)
		}
		if len(members) < p.MinClusterSize {
			outliers = append(outliers, members...)
			continue
		}
		memberData := ds.Subset(members)
		pca, err := stats.ComputePCA(memberData.Data, memberData.Dim)
		if err != nil {
			return nil, err
		}
		sdim := p.SDim
		if sdim > ds.Dim {
			sdim = ds.Dim
		}
		ellipsoids = append(ellipsoids, ellipsoid{members: members, sdim: pickAcceptedDim(pca, memberData, sdim, p, gscale), pca: pca})
	}
	return dimensionalityOptimization(ds, ellipsoids, outliers, p, gscale)
}

// mergeCentroids clusters the ellipsoid-array centroids. With few
// centroids, plain Generate Ellipsoid at SDim suffices; groups are returned
// as centroid-index lists.
func (s *Scalable) mergeCentroids(cents *dataset.Dataset, p Params) ([][]int, error) {
	if cents.N == 1 {
		return [][]int{{0}}, nil
	}
	mp := p
	// Centroid sets are tiny; every centroid matters, so do not shunt them
	// into the outlier bin.
	mp.MinClusterSize = 1
	indices := make([]int, cents.N)
	for i := range indices {
		indices[i] = i
	}
	var centOutliers []int
	ellips, err := generateEllipsoid(cents, indices, mp.SDim, mp, &centOutliers, true, globalScale(cents))
	if err != nil {
		return nil, err
	}
	groups := make([][]int, 0, len(ellips)+len(centOutliers))
	for _, e := range ellips {
		groups = append(groups, e.members)
	}
	// A centroid the merge pass could not place still owns its stream
	// ellipsoid: keep it as its own group.
	for _, o := range centOutliers {
		groups = append(groups, []int{o})
	}
	return groups, nil
}

// pickAcceptedDim finds the smallest power-of-two multiple of SDim whose
// subspace meets MaxMPE for the merged ellipsoid, mirroring the acceptance
// level the in-memory GE recursion would have reached.
func pickAcceptedDim(pca *stats.PCA, memberData *dataset.Dataset, sdim int, p Params, gscale float64) int {
	d := memberData.Dim
	for s := sdim; ; s *= 2 {
		if s >= d {
			return d
		}
		if pca.TailRMS(s) <= p.MaxMPE*gscale {
			return s
		}
	}
}
