package mmdr_test

import (
	"bytes"
	"testing"

	"mmdr"
)

// Layout round-trip lockdown at the public API: build → persist → load →
// NewIndex rebuilds the blocked vector layout from scratch, and every query
// path (KNN, Range, fused BatchKNN/BatchRange) over the reloaded index is
// bitwise identical to the original. Then dynamic churn drops the layout,
// RebuildLayout restores it, and answers never move.

func flatQueries(data []float64, dim int, rows ...int) []float64 {
	out := make([]float64, 0, len(rows)*dim)
	for _, r := range rows {
		out = append(out, data[r*dim:(r+1)*dim]...)
	}
	return out
}

func sameBatch(t *testing.T, label string, got, want [][]mmdr.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d result sets, want %d", label, len(got), len(want))
	}
	for qi := range want {
		if len(got[qi]) != len(want[qi]) {
			t.Fatalf("%s query %d: %d results, want %d", label, qi, len(got[qi]), len(want[qi]))
		}
		for i := range want[qi] {
			if got[qi][i].ID != want[qi][i].ID || got[qi][i].Dist != want[qi][i].Dist {
				t.Fatalf("%s query %d rank %d: got (%d, %v), want (%d, %v)", label, qi, i,
					got[qi][i].ID, got[qi][i].Dist, want[qi][i].ID, want[qi][i].Dist)
			}
		}
	}
}

func TestLayoutSurvivesSaveLoadRebuild(t *testing.T) {
	data, dim := testData(t, 900, 12, 2, 431)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	origIdx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	const k = 9
	queries := flatQueries(data, dim, 3, 70, 141, 212, 283, 354, 425, 496, 567, 638, 709)
	origBatch, err := origIdx.BatchKNN(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	// The fused batch must agree with the single-query path before we even
	// involve persistence.
	for qi := 0; qi < len(queries)/dim; qi++ {
		solo := origIdx.KNN(queries[qi*dim:(qi+1)*dim], k)
		sameBatch(t, "orig batch-vs-solo", [][]mmdr.Neighbor{origBatch[qi]}, [][]mmdr.Neighbor{solo})
	}
	origRange, err := origIdx.BatchRange(queries, 0.4)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := mmdr.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	loadIdx, err := loaded.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	loadBatch, err := loadIdx.BatchKNN(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	sameBatch(t, "reload batch", loadBatch, origBatch)
	loadRange, err := loadIdx.BatchRange(queries, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	sameBatch(t, "reload range", loadRange, origRange)

	// Dynamic churn drops the layout; the batch path falls back and still
	// matches, and RebuildLayout restores the fused path bit for bit.
	p := make([]float64, dim)
	copy(p, data[:dim])
	p[0] += 1e-4
	id, err := loadIdx.Insert(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loadIdx.Delete(id); err != nil {
		t.Fatal(err)
	}
	churned, err := loadIdx.BatchKNN(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	sameBatch(t, "churned fallback batch", churned, origBatch)
	loadIdx.RebuildLayout()
	rebuilt, err := loadIdx.BatchKNN(queries, k)
	if err != nil {
		t.Fatal(err)
	}
	sameBatch(t, "rebuilt batch", rebuilt, origBatch)
}
