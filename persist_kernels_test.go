package mmdr

// White-box persistence test: the query kernel caches (transposed basis,
// Cholesky factor of CovInv) live in unexported Subspace fields that gob
// does not serialize, so Load must reconstruct them. The caches are pure
// functions of the exported fields, which is what makes rebuilding them
// equivalent to having saved them.

import (
	"bytes"
	"testing"

	"mmdr/internal/datagen"
)

func TestLoadRebuildsKernelCaches(t *testing.T) {
	cfg := datagen.CorrelatedConfig{
		N: 900, Dim: 12, NumClusters: 2, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.8, Seed: 311,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	model, err := ReduceDataset(ds, WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(model.result.Subspaces) == 0 {
		t.Fatal("reduction produced no subspaces")
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for si, orig := range model.result.Subspaces {
		got := loaded.result.Subspaces[si]
		ob, gb := orig.KernelBasisT(), got.KernelBasisT()
		if ob == nil {
			t.Fatalf("subspace %d: builder left no basisT cache", si)
		}
		if gb == nil {
			t.Fatalf("subspace %d: Load did not rebuild basisT", si)
		}
		if len(ob) != len(gb) {
			t.Fatalf("subspace %d: basisT length %d after load, want %d", si, len(gb), len(ob))
		}
		for i := range ob {
			if ob[i] != gb[i] {
				t.Fatalf("subspace %d: basisT[%d] = %v after load, want %v", si, i, gb[i], ob[i])
			}
		}
		oc, gc := orig.KernelMahaChol(), got.KernelMahaChol()
		if orig.CovInv != nil && oc == nil {
			t.Fatalf("subspace %d: builder left no Cholesky cache despite CovInv", si)
		}
		if (oc == nil) != (gc == nil) {
			t.Fatalf("subspace %d: Cholesky cache presence changed across load (orig %v, loaded %v)",
				si, oc != nil, gc != nil)
		}
		if oc != nil {
			if len(oc.Data) != len(gc.Data) {
				t.Fatalf("subspace %d: Cholesky size changed across load", si)
			}
			for i := range oc.Data {
				if oc.Data[i] != gc.Data[i] {
					t.Fatalf("subspace %d: Cholesky[%d] = %v after load, want %v", si, i, gc.Data[i], oc.Data[i])
				}
			}
		}
	}
}
