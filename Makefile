GO ?= go

.PHONY: all build test race bench vet fmt experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 verification: vet plus the full suite under the race detector,
# including the concurrent-index/atomic-counter tests.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

experiments:
	$(GO) run ./cmd/mmdrbench -experiment all -scale small
