GO ?= go

.PHONY: all build test race racegate bench bench-json bench-smoke vet fmt fmt-check lint gate check check-baseline experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 verification: vet plus the full suite under the race detector,
# including the concurrent-index/atomic-counter tests.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

# racegate is the concurrency-verification gate (DESIGN.md §12): the
# adversarial serving scenarios (mixed load, reload storms, overload then
# drain, slow clients, racing Close) run under the race detector with
# goroutine-leak and stall watchdogs wrapped around each one
# (internal/verify). halt_on_error makes the first race fatal instead of
# a log line scrolling past. -count=1 defeats test caching: the gate's
# value is re-running the schedules, not replaying a cached PASS.
racegate:
	GORACE=halt_on_error=1 $(GO) test -race -count=1 -run 'TestRaceGate' ./internal/serve/ ./internal/verify/
	$(GO) test -race -count=1 ./internal/verify/

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# fmt-check fails (listing the offenders) when any file needs gofmt; the CI
# formatting gate.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# lint runs the repo's custom static-analysis suite (internal/analysis):
# maporder, seededrand, hotalloc, poolreduce, plus the dataflow analyzers
# scratchleak, lockbal, floatcmp, persistdrift. See DESIGN.md, "Enforced
# invariants". Also runnable as `go vet -vettool=<path>/mmdrlint ./...`;
# a single analyzer runs via `go run ./cmd/mmdrlint -only lockbal ./...`.
lint:
	$(GO) run ./cmd/mmdrlint ./...

# -run '^$' keeps the unit tests out of the benchmark run: without it every
# package's test suite executes before its benchmarks.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem ./...

# gate runs the mmdrgate compiler-contract gate in strict mode: it rebuilds
# the hot-path packages with -m=2 and BCE debug diagnostics enabled and
# checks every //mmdr:hotpath function against the committed contract
# manifest (internal/analysis/gate/contracts). See DESIGN.md §11.
gate:
	$(GO) run ./cmd/mmdrgate -strict

# Default verification bundle: the gofmt gate CI enforces, vet, the custom
# analyzer suite, the full test suite, a short-mode pass of the race gate's
# serving scenarios, and a short fuzz smoke of the query-equivalence
# targets (each holds EXACT equality between the kernelized tree paths and
# the sequential-scan oracle).
check: fmt-check
	$(GO) vet ./...
	$(GO) run ./cmd/mmdrlint ./...
	$(GO) run ./cmd/mmdrgate -strict
	$(GO) test ./...
	GORACE=halt_on_error=1 $(GO) test -race -count=1 -short -run 'TestRaceGate' ./internal/serve/
	$(GO) test ./internal/idist/ -run '^$$' -fuzz FuzzKNNvsSeqScan -fuzztime 10s
	$(GO) test ./internal/idist/ -run '^$$' -fuzz FuzzRangeVsSeqScan -fuzztime 10s
	$(GO) test ./internal/idist/ -run '^$$' -fuzz FuzzBatchKNNvsKNN -fuzztime 10s

# Regenerate BENCH_parallel.json: serial vs parallel build time, sequential
# vs fused-batch query throughput, and the worker sweep {1,2,4,8} at paper
# scale (n=100k, d=64).
# BENCH_query.json: kernelized vs frozen-reference query path at paper
# scale (n=100k, d=64) — ns/query, allocs/query, qps.
# BENCH_obs.json: cost of carrying the runtime-metrics layer on the KNN
# hot path (off vs on ns/query, budget ≤2%) plus the recorded latency
# distributions.
# BENCH_approx.json: the quantized-scan recall/QPS frontier — PQ code sizes
# x candidate budgets against the exact fused batch and sequential scan.
# BENCH_serve.json: end-to-end HTTP serving latency/QPS across a shard x
# client-concurrency sweep, gated on served answers being bitwise identical
# to direct BatchKNN.
bench-json:
	$(GO) run ./cmd/mmdrbench -scale paper -bench-parallel BENCH_parallel.json
	$(GO) run ./cmd/mmdrbench -scale paper -bench-query BENCH_query.json
	$(GO) run ./cmd/mmdrbench -scale paper -bench-obs BENCH_obs.json
	$(GO) run ./cmd/mmdrbench -scale paper -bench-approx BENCH_approx.json
	$(GO) run ./cmd/mmdrbench -scale paper -bench-serve BENCH_serve.json

# bench-smoke regenerates every BENCH_*.json at small scale — seconds, not
# minutes — so CI can verify the emitters end to end and archive the
# reports as artifacts. Numbers from this target are smoke signals only;
# use bench-json for quotable measurements.
bench-smoke:
	$(GO) run ./cmd/mmdrbench -scale small -bench-parallel BENCH_parallel.json
	$(GO) run ./cmd/mmdrbench -scale small -bench-query BENCH_query.json
	$(GO) run ./cmd/mmdrbench -scale small -bench-obs BENCH_obs.json
	$(GO) run ./cmd/mmdrbench -scale small -bench-approx BENCH_approx.json
	$(GO) run ./cmd/mmdrbench -scale small -bench-serve BENCH_serve.json

# check-baseline diffs a fresh small-scale query/approx run against the
# committed BENCH_query.json / BENCH_approx.json on the scale-portable
# fields (correctness gates, allocs/query, speedup collapse, report shape)
# and fails on regression. Raw nanoseconds are never compared — the
# committed reports are paper-scale. CI runs this as a non-blocking step.
check-baseline:
	$(GO) run ./cmd/mmdrbench -scale small -check-baseline

experiments:
	$(GO) run ./cmd/mmdrbench -experiment all -scale small
