GO ?= go

.PHONY: all build test race bench bench-json vet fmt experiments

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Tier-2 verification: vet plus the full suite under the race detector,
# including the concurrent-index/atomic-counter tests.
race:
	$(GO) vet ./...
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate BENCH_parallel.json: serial vs parallel build time and
# sequential vs batched query throughput (speedups scale with cores).
bench-json:
	$(GO) run ./cmd/mmdrbench -scale small -bench-parallel BENCH_parallel.json

experiments:
	$(GO) run ./cmd/mmdrbench -experiment all -scale small
