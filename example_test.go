package mmdr_test

import (
	"fmt"
	"log"

	"mmdr"
	"mmdr/internal/datagen"
)

// exampleData builds a small deterministic workload: three locally
// correlated elliptical clusters in 16 dimensions.
func exampleData() ([]float64, int) {
	cfg := datagen.CorrelatedConfig{
		N: 1500, Dim: 16, NumClusters: 3, SDim: 2,
		VarRatio: 30, ScaleDecay: 0.8, Seed: 99,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	datagen.Normalize(ds)
	return ds.Data, ds.Dim
}

// The basic pipeline: reduce, index, query.
func Example() {
	data, dim := exampleData()

	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		log.Fatal(err)
	}

	neighbors := idx.KNN(model.Point(0), 3)
	fmt.Printf("subspaces: %d\n", len(model.Subspaces()))
	fmt.Printf("nearest neighbor of point 0: point %d\n", neighbors[0].ID)
	// Output:
	// subspaces: 3
	// nearest neighbor of point 0: point 0
}

// Comparing reduction methods on the same data.
func ExampleModel_EvaluatePrecision() {
	data, dim := exampleData()
	queries := data[:20*dim] // reuse the first 20 points as queries

	for _, method := range []mmdr.Method{mmdr.MethodMMDR, mmdr.MethodGDR} {
		model, err := mmdr.Reduce(data, dim,
			mmdr.WithMethod(method), mmdr.WithSeed(1), mmdr.WithForcedDim(2))
		if err != nil {
			log.Fatal(err)
		}
		p, err := model.EvaluatePrecision(queries, 10)
		if err != nil {
			log.Fatal(err)
		}
		// Locally correlated clusters: per-cluster subspaces beat one
		// global projection.
		fmt.Printf("%s precision > 0.5: %v\n", method, p > 0.5)
	}
	// Output:
	// MMDR precision > 0.5: true
	// GDR precision > 0.5: false
}

// Dynamic maintenance: insert and delete without rebuilding.
func ExampleIndex_Insert() {
	data, dim := exampleData()
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		log.Fatal(err)
	}

	p := model.Point(7)
	p[0] += 0.001
	id, err := idx.Insert(p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted as row %d, found: %v\n", id, idx.KNN(p, 1)[0].ID == id)

	ok, err := idx.Delete(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deleted: %v\n", ok)
	// Output:
	// inserted as row 1500, found: true
	// deleted: true
}
