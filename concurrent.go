package mmdr

import "sync"

// ConcurrentIndex wraps an Index for concurrent use: KNN and Range run
// under a shared read lock (many in flight at once), while Insert and
// Delete take the write lock. The underlying extended iDistance structure
// is read-mostly, so this wrapper is the pragmatic production pattern —
// queries scale out, maintenance serializes.
//
// Cost counters attached via WithCostCounter are atomic, so they may stay
// attached while queries run concurrently through this wrapper. Insert
// grows the model's backing data, so Model methods that read it (Point,
// Validate) must not run concurrently with writers — snapshot what you need
// before going concurrent, or route every access through this wrapper.
type ConcurrentIndex struct {
	mu  sync.RWMutex
	idx *Index
}

// Concurrent wraps idx for concurrent use.
func Concurrent(idx *Index) *ConcurrentIndex {
	return &ConcurrentIndex{idx: idx}
}

// KNN returns the k nearest neighbors of q. Safe for concurrent use.
func (c *ConcurrentIndex) KNN(q []float64, k int) []Neighbor {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.KNN(q, k)
}

// KNNTrace returns the k nearest neighbors of q plus the structured explain
// of the search. Safe for concurrent use.
func (c *ConcurrentIndex) KNNTrace(q []float64, k int) ([]Neighbor, *KNNTrace, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.KNNTrace(q, k)
}

// Range returns all points within r of q. Safe for concurrent use.
func (c *ConcurrentIndex) Range(q []float64, r float64) ([]Neighbor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.Range(q, r)
}

// Insert adds a point. Safe for concurrent use; serializes with other
// writers and excludes readers.
func (c *ConcurrentIndex) Insert(p []float64) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Insert(p)
}

// Delete removes point id. Safe for concurrent use.
func (c *ConcurrentIndex) Delete(id int) (bool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.idx.Delete(id)
}

// RebuildLayout re-materializes the blocked vector layout after Insert or
// Delete churn (see Index.RebuildLayout). Takes the write lock: the rebuild
// mutates the derived cache that concurrent readers scan.
func (c *ConcurrentIndex) RebuildLayout() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.idx.RebuildLayout()
}

// Name identifies the underlying scheme.
func (c *ConcurrentIndex) Name() string { return c.idx.Name() }
