// Package mmdr is an adaptive dimensionality-reduction and high-dimensional
// indexing library, reproducing "An Adaptive and Efficient Dimensionality
// Reduction Algorithm for High-Dimensional Indexing" (Jin, Ooi, Shen, Yu,
// Zhou — ICDE 2003).
//
// The pipeline has two stages:
//
//  1. Reduce discovers locally correlated, elliptical clusters with the
//     Multi-level Mahalanobis-based Dimensionality Reduction (MMDR)
//     algorithm and projects each cluster into its own low-dimensional axis
//     system; badly correlated points stay in the original space as
//     outliers. GDR (global PCA) and LDR (Chakrabarti–Mehrotra) baselines
//     are available through options.
//  2. NewIndex builds an extended iDistance index — a single B⁺-tree over
//     all subspaces — answering K-nearest-neighbor queries over the reduced
//     representation.
//
// Quick start:
//
//	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(42))
//	idx, err := model.NewIndex()
//	neighbors := idx.KNN(query, 10)
//
// Data is flat row-major float64: point i occupies data[i*dim:(i+1)*dim].
package mmdr

import (
	"errors"
	"fmt"
	"math"

	"mmdr/internal/core"
	"mmdr/internal/dataset"
	"mmdr/internal/idist"
	"mmdr/internal/index"
	"mmdr/internal/iostat"
	"mmdr/internal/metrics"
	"mmdr/internal/obs"
	"mmdr/internal/quant"
	"mmdr/internal/query"
	"mmdr/internal/reduction"
)

// Method selects the dimensionality-reduction algorithm.
type Method int

// Available reduction methods.
const (
	// MethodMMDR is the paper's algorithm (default).
	MethodMMDR Method = iota
	// MethodMMDRScalable is the §4.3 stream-based variant for datasets
	// larger than memory.
	MethodMMDRScalable
	// MethodLDR is the Local Dimensionality Reduction baseline.
	MethodLDR
	// MethodGDR is the Global (single PCA) baseline.
	MethodGDR
	// MethodRaw performs no reduction: k-means partitions with every
	// dimension kept. Indexing it yields the original full-dimensional
	// iDistance — lossless answers at higher query cost.
	MethodRaw
)

// String names the method as used in the paper's tables.
func (m Method) String() string {
	switch m {
	case MethodMMDR:
		return "MMDR"
	case MethodMMDRScalable:
		return "MMDR-scalable"
	case MethodLDR:
		return "LDR"
	case MethodGDR:
		return "GDR"
	case MethodRaw:
		return "raw"
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// config collects option state.
type config struct {
	method    Method
	params    core.Params
	gdrDim    int
	ldr       reduction.LDR
	pageSize  int
	counter   iostat.Sink
	tracer    obs.Tracer
	metrics   *metrics.Registry
	forcedDim int
	// parallelism is the resolved worker bound (WithParallelism); 0 means
	// the option was never given and all cores are used.
	parallelism int
}

// Option customizes Reduce.
type Option func(*config)

// WithMethod selects the reduction algorithm (default MethodMMDR).
func WithMethod(m Method) Option { return func(c *config) { c.method = m } }

// WithSeed fixes all randomized steps for reproducibility.
func WithSeed(seed int64) Option {
	return func(c *config) { c.params.Seed = seed; c.ldr.Seed = seed }
}

// WithMaxClusters bounds the number of elliptical clusters per clustering
// invocation (the paper's MaxEC, default 10).
func WithMaxClusters(k int) Option {
	return func(c *config) { c.params.MaxEC = k; c.ldr.MaxClusters = k }
}

// WithMaxDim caps the retained dimensionality per subspace (default 20).
func WithMaxDim(d int) Option {
	return func(c *config) { c.params.MaxDim = d; c.ldr.MaxDim = d; c.gdrDim = d }
}

// WithForcedDim forces every subspace to exactly d retained dimensions,
// disabling the per-cluster dimensionality optimization. Used by the
// paper's dimensionality sweeps.
func WithForcedDim(d int) Option { return func(c *config) { c.forcedDim = d } }

// WithBeta sets the projection-distance outlier threshold β (default 0.1).
func WithBeta(beta float64) Option { return func(c *config) { c.params.Beta = beta } }

// WithOutlierBudget caps outlier evictions at the given fraction of N (the
// paper's ξ, default 0.005).
func WithOutlierBudget(xi float64) Option {
	return func(c *config) { c.params.Xi = xi; c.ldr.Xi = xi }
}

// WithStreamFraction sets Scalable MMDR's data-stream size as a fraction of
// N (the paper's ε, default 0.005).
func WithStreamFraction(eps float64) Option { return func(c *config) { c.params.Epsilon = eps } }

// WithPageSize sets the simulated disk page size for index construction
// (default 8192).
func WithPageSize(bytes int) Option { return func(c *config) { c.pageSize = bytes } }

// WithCostCounter attaches a cost counter that accumulates simulated page
// I/O and distance computations across reduction and queries. The counter is
// atomic, so the same counter may stay attached while queries run
// concurrently (e.g. through ConcurrentIndex).
func WithCostCounter(ctr *CostCounter) Option {
	return func(c *config) {
		if ctr == nil {
			return
		}
		c.counter = &ctr.c
		c.params.Counter = &ctr.c
	}
}

// CostCounter mirrors the library's logical cost model: simulated page
// reads/writes and distance computations. All methods are safe for
// concurrent use; the zero value is ready to use.
type CostCounter struct {
	c iostat.AtomicCounter
}

// Reset zeroes the counter.
func (c *CostCounter) Reset() { c.c.Reset() }

// PageIO returns total simulated page reads + writes.
func (c *CostCounter) PageIO() int64 { return c.c.IO() }

// Distances returns the number of distance computations performed.
func (c *CostCounter) Distances() int64 { return c.c.Snapshot().DistanceOps }

// Metrics returns a consistent point-in-time snapshot of every tracked cost.
func (c *CostCounter) Metrics() Metrics { return c.c.Snapshot() }

// String formats the current counts.
func (c *CostCounter) String() string { return c.c.String() }

// MarshalJSON encodes a snapshot of the counts.
func (c *CostCounter) MarshalJSON() ([]byte, error) { return c.c.MarshalJSON() }

// Neighbor is one KNN answer: the row index of the point in the original
// data and its distance in the reduced representation.
type Neighbor = index.Neighbor

// Model is a fitted dimensionality reduction over a dataset.
type Model struct {
	ds     *dataset.Dataset
	result *reduction.Result
	cfg    config
	method string
	quant  *quant.Set // trained product quantizer, nil until TrainQuantizer
}

// Reduce fits a dimensionality-reduction model over n = len(data)/dim
// points of dimension dim (row-major). The data slice is retained by the
// model; do not mutate it afterwards.
func Reduce(data []float64, dim int, opts ...Option) (*Model, error) {
	ds, err := dataset.FromData(dim, data)
	if err != nil {
		return nil, err
	}
	return ReduceDataset(ds, opts...)
}

// ReduceDataset is Reduce over an existing dataset value.
func ReduceDataset(ds *dataset.Dataset, opts ...Option) (*Model, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	return reduceWithConfig(ds, cfg)
}

// reduceWithConfig runs the configured reducer over ds.
func reduceWithConfig(ds *dataset.Dataset, cfg config) (*Model, error) {
	if ds == nil || ds.N == 0 {
		return nil, errors.New("mmdr: empty dataset")
	}
	cfg.params.ForcedDim = cfg.forcedDim
	par := resolveParallelism(cfg)
	cfg.params.Parallelism = par
	cfg.ldr.Parallelism = par
	var red reduction.Reducer
	switch cfg.method {
	case MethodMMDR:
		red = core.New(cfg.params)
	case MethodMMDRScalable:
		red = &core.Scalable{Params: cfg.params}
	case MethodLDR:
		l := cfg.ldr
		l.ForcedDim = cfg.forcedDim
		l.Tracer = cfg.tracer
		red = &l
	case MethodRaw:
		red = &reduction.Identity{Clusters: cfg.params.MaxEC, Seed: cfg.params.Seed}
	case MethodGDR:
		d := cfg.gdrDim
		if cfg.forcedDim > 0 {
			d = cfg.forcedDim
		}
		if d <= 0 {
			d = 20
		}
		if d > ds.Dim {
			d = ds.Dim
		}
		red = &reduction.GDR{TargetDim: d, Tracer: cfg.tracer}
	default:
		return nil, fmt.Errorf("mmdr: unknown method %v", cfg.method)
	}
	result, err := red.Reduce(ds)
	if err != nil {
		return nil, err
	}
	return &Model{ds: ds, result: result, cfg: cfg, method: red.Name()}, nil
}

// Method returns the name of the algorithm that produced the model.
func (m *Model) Method() string { return m.method }

// N returns the number of points the model covers.
func (m *Model) N() int { return m.ds.N }

// Dim returns the original dimensionality.
func (m *Model) Dim() int { return m.ds.Dim }

// SubspaceInfo summarizes one discovered subspace.
type SubspaceInfo struct {
	ID         int
	Points     int
	Dim        int     // retained dimensionality d_r
	MPE        float64 // mean projection error of its members
	MaxRadius  float64 // data-sphere radius in reduced coordinates
	MahaRadius float64 // Mahalanobis radius in the original space
}

// Subspaces describes the discovered subspaces.
func (m *Model) Subspaces() []SubspaceInfo {
	out := make([]SubspaceInfo, len(m.result.Subspaces))
	for i, s := range m.result.Subspaces {
		out[i] = SubspaceInfo{
			ID:         s.ID,
			Points:     len(s.Members),
			Dim:        s.Dr,
			MPE:        s.MPE,
			MaxRadius:  s.MaxRadius,
			MahaRadius: s.MahaRadius,
		}
	}
	return out
}

// Outliers returns the row indices kept in the original space.
func (m *Model) Outliers() []int {
	return append([]int(nil), m.result.Outliers...)
}

// AvgDim returns the member-weighted average retained dimensionality.
func (m *Model) AvgDim() float64 { return m.result.Summarize().AvgDim }

// Validate checks the model's structural invariants (every point assigned
// exactly once, orthonormal bases, consistent shapes).
func (m *Model) Validate() error { return m.result.Validate(m.ds.N) }

// Index is a KNN index over a reduced model.
type Index struct {
	model       *Model
	idx         index.KNNIndex
	maint       *idist.Index // non-nil when the index supports Insert
	parallelism int          // resolved worker bound for batch queries
}

// NewIndex builds the extended iDistance index over the model's subspaces.
func (m *Model) NewIndex(opts ...Option) (*Index, error) {
	cfg := m.cfg
	for _, o := range opts {
		o(&cfg)
	}
	idx, err := idist.Build(m.ds, m.result, idist.Options{
		PageSize: cfg.pageSize,
		Counter:  cfg.counter,
		Tracer:   cfg.tracer,
		Metrics:  cfg.metrics,
		Quant:    m.quant,
	})
	if err != nil {
		return nil, err
	}
	return &Index{model: m, idx: idx, maint: idx, parallelism: resolveParallelism(cfg)}, nil
}

// NewSeqScan builds the sequential-scan baseline over the same reduced
// representation (identical answers, different cost profile).
func (m *Model) NewSeqScan(opts ...Option) *Index {
	cfg := m.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return &Index{model: m, idx: index.NewSeqScan(m.ds, m.result, cfg.counter), parallelism: resolveParallelism(cfg)}
}

// KNN returns the k nearest neighbors of q (length Dim) in the reduced
// representation, ascending by distance.
func (idx *Index) KNN(q []float64, k int) []Neighbor {
	return idx.idx.KNN(q, k)
}

// Name identifies the index scheme.
func (idx *Index) Name() string { return idx.idx.Name() }

// Insert adds a new point to the dataset and the index (extended iDistance
// dynamic insertion, paper §5). It returns the new point's row ID, or an
// error if the index scheme does not support insertion.
func (idx *Index) Insert(p []float64) (int, error) {
	if idx.maint == nil {
		return 0, fmt.Errorf("mmdr: %s index does not support insertion", idx.Name())
	}
	return idx.maint.Insert(p)
}

// Point returns a copy of row i of the model's data.
func (m *Model) Point(i int) []float64 {
	out := make([]float64, m.ds.Dim)
	copy(out, m.ds.Point(i))
	return out
}

// Range returns every point within distance r of q in the reduced
// representation, ascending by distance. Only the extended iDistance index
// supports range queries.
func (idx *Index) Range(q []float64, r float64) ([]Neighbor, error) {
	if idx.maint == nil {
		return nil, fmt.Errorf("mmdr: %s index does not support range queries", idx.Name())
	}
	return idx.maint.Range(q, r), nil
}

// Delete removes point id from the index (the model's data is untouched).
// It reports whether the point was indexed.
func (idx *Index) Delete(id int) (bool, error) {
	if idx.maint == nil {
		return false, fmt.Errorf("mmdr: %s index does not support deletion", idx.Name())
	}
	return idx.maint.Delete(id), nil
}

// RebuildLayout re-materializes the extended iDistance index's blocked
// vector layout after dynamic Insert/Delete churn. The layout is a derived
// cache that scans read contiguously; structural mutations drop it (queries
// transparently fall back to per-entry tree visits, answers unchanged), and
// rebuilding restores the fast scan and fused-batch paths. No-op on index
// schemes without a layout (sequential scan). Answers are bit-identical
// with or without the layout — only throughput changes.
func (idx *Index) RebuildLayout() {
	if idx.maint != nil {
		idx.maint.RebuildLayout()
	}
}

// EvaluatePrecision measures the model's mean KNN precision over a query
// workload (flat row-major, same dimensionality as the model): for each
// query, the fraction of the exact k nearest neighbors (in the original
// space) that the reduced representation returns — the paper's §6 metric.
func (m *Model) EvaluatePrecision(queries []float64, k int) (float64, error) {
	if len(queries) == 0 || len(queries)%m.ds.Dim != 0 {
		return 0, fmt.Errorf("mmdr: queries length %d not a multiple of dim %d", len(queries), m.ds.Dim)
	}
	qs, err := dataset.FromData(m.ds.Dim, queries)
	if err != nil {
		return 0, err
	}
	return query.ReductionPrecision(m.ds, m.result, qs, k), nil
}

// IndexStats describes an index's structure (extended iDistance only).
type IndexStats = idist.Stats

// Stats returns structural statistics of the index, or zero values for
// schemes that do not expose them (sequential scan).
func (idx *Index) Stats() IndexStats {
	if idx.maint == nil {
		return IndexStats{}
	}
	return idx.maint.Stats()
}

// ReconstructPoint returns the model's lossy reconstruction of point i:
// subspace members decompress from their reduced coordinates; outliers are
// stored exactly. The Euclidean gap to the original point is that point's
// projection error.
func (m *Model) ReconstructPoint(i int) ([]float64, error) {
	if i < 0 || i >= m.ds.N {
		return nil, fmt.Errorf("mmdr: point %d out of range [0,%d)", i, m.ds.N)
	}
	for _, s := range m.result.Subspaces {
		for k, id := range s.Members {
			if id == i {
				return s.Reconstruct(s.MemberCoords(k)), nil
			}
		}
	}
	return m.Point(i), nil // outlier: stored exactly
}

// CompressionRatio returns original storage / reduced storage: subspace
// members store Dr coordinates instead of Dim, outliers store Dim plus
// their index. Basis and centroid overheads are included.
func (m *Model) CompressionRatio() float64 {
	original := float64(m.ds.N * m.ds.Dim)
	var reduced float64
	for _, s := range m.result.Subspaces {
		reduced += float64(len(s.Members) * s.Dr)        // coordinates
		reduced += float64(m.ds.Dim*s.Dr + m.ds.Dim + 2) // basis + centroid + radii
	}
	reduced += float64(len(m.result.Outliers) * (m.ds.Dim + 1))
	if reduced <= 0 {
		return 0
	}
	return original / reduced
}

// AnomalyScore returns the distance from p to the nearest discovered
// subspace (the minimum ProjDist_r across subspaces). Points that no local
// correlation structure explains score high — the same criterion the
// β-threshold uses to separate outliers during reduction.
func (m *Model) AnomalyScore(p []float64) float64 {
	if len(m.result.Subspaces) == 0 {
		return 0
	}
	best := math.Inf(1)
	for _, s := range m.result.Subspaces {
		if r := s.Residual(p); r < best {
			best = r
		}
	}
	return best
}

// Refit re-runs the dimensionality reduction over the model's current data
// — including points added through Index.Insert — with the model's original
// options (overridable). It is the maintenance step after enough insertions
// have drifted from the fitted subspaces: rebuild the model, then rebuild
// indexes from it.
func (m *Model) Refit(opts ...Option) (*Model, error) {
	cfg := m.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return reduceWithConfig(m.ds, cfg)
}
