package mmdr

import (
	"fmt"

	"mmdr/internal/quant"
)

// QuantizeConfig configures product-quantizer training (TrainQuantizer).
// The zero value selects the defaults.
type QuantizeConfig struct {
	// Blocks is the number of sub-blocks each reduced vector is split into
	// (default 8, clamped to the vector dimensionality). One byte of code is
	// stored per block, so Blocks is also the code size in bytes.
	Blocks int
	// Bits is the code width per block (default 6, max 8): each block is
	// quantized to one of 2^Bits centroids.
	Bits int
}

// TrainQuantizer fits a per-subspace product quantizer over the model's
// reduced representation (and the outliers' original coordinates): each
// partition gets its own codebook of Blocks sub-quantizers, trained with the
// library's k-means on the partition's member vectors. The trained quantizer
// rides along with the model — Save/Load persist it, and every index built
// by NewIndex afterwards carries compact codes and answers KNNQuantized.
//
// Training is deterministic: it reuses the model's seed, and the result is
// bit-identical at any parallelism.
func (m *Model) TrainQuantizer(cfg QuantizeConfig) error {
	set, err := quant.TrainSet(m.ds, m.result, quant.Config{
		Blocks:      cfg.Blocks,
		Bits:        cfg.Bits,
		Seed:        m.cfg.params.Seed,
		Parallelism: resolveParallelism(m.cfg),
	})
	if err != nil {
		return fmt.Errorf("mmdr: training quantizer: %w", err)
	}
	m.quant = set
	return nil
}

// HasQuantizer reports whether a trained quantizer is attached to the model.
func (m *Model) HasQuantizer() bool { return m.quant != nil }

// CodeBytesPerVector returns the per-vector size of the quantized codes in
// bytes (0 without a trained quantizer). Compare against 8 bytes per float64
// coordinate of the reduced representation.
func (m *Model) CodeBytesPerVector() int {
	if m.quant == nil {
		return 0
	}
	return m.quant.CodeBytesPerVector()
}

// KNNQuantized answers a KNN query through the quantized scan path: the
// iDistance search geometry is unchanged, but candidate rows are scored by
// asymmetric-distance (ADC) table lookups over their compact codes, the
// scan stops once it has evaluated a bounded multiple of `budget` rows,
// and the best ~budget candidates are re-ranked with exact distances. The
// budget is the recall/throughput knob — recall grows monotonically with
// it, and budget >= N degenerates to the exact answer — while the scan
// itself touches Blocks bytes per row instead of Dr float64s.
//
// Requires a model with a trained quantizer (TrainQuantizer before
// NewIndex) and the extended iDistance index.
func (idx *Index) KNNQuantized(q []float64, k, budget int) ([]Neighbor, error) {
	if idx.maint == nil {
		return nil, fmt.Errorf("mmdr: %s index does not support quantized search", idx.Name())
	}
	return idx.maint.KNNQuantized(q, k, budget)
}

// BatchKNNQuantized answers a workload of quantized KNN queries through the
// fused batch kernels: flat row-major queries like BatchKNN, and the result
// at position i is exactly what KNNQuantized(query i, k, budget) returns —
// batching changes throughput, never answers.
func (idx *Index) BatchKNNQuantized(queries []float64, k, budget int) ([][]Neighbor, error) {
	if idx.maint == nil {
		return nil, fmt.Errorf("mmdr: %s index does not support quantized search", idx.Name())
	}
	qs, err := splitQueries(queries, idx.model.ds.Dim)
	if err != nil {
		return nil, err
	}
	return idx.maint.BatchKNNQuantized(qs, k, budget, idx.parallelism)
}

// KNNQuantized answers a quantized KNN query under the shared read lock.
// Safe for concurrent use.
func (c *ConcurrentIndex) KNNQuantized(q []float64, k, budget int) ([]Neighbor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.KNNQuantized(q, k, budget)
}

// BatchKNNQuantized answers a workload of quantized KNN queries under the
// shared read lock (one consistent snapshot, like BatchKNN).
func (c *ConcurrentIndex) BatchKNNQuantized(queries []float64, k, budget int) ([][]Neighbor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.BatchKNNQuantized(queries, k, budget)
}
