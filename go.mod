module mmdr

go 1.22
