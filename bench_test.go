package mmdr_test

import (
	"io"
	"testing"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/experiments"
)

// Each BenchmarkFig* regenerates one of the paper's figures at small scale;
// mmdrbench runs them at medium/paper scale. The benchmark time is the
// wall-clock cost of the whole experiment (data generation, reduction,
// index construction and the query workload).
func benchFigure(b *testing.B, name string) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb, err := experiments.Run(name, experiments.Config{Scale: experiments.Small, Seed: 1})
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if len(tb.Rows) == 0 {
			b.Fatalf("%s: empty table", name)
		}
		tb.Fprint(io.Discard)
	}
}

// Figure 7a: precision vs ellipticity (MMDR / LDR / GDR).
func BenchmarkFig7a(b *testing.B) { benchFigure(b, "fig7a") }

// Figure 7b: precision vs number of correlated clusters.
func BenchmarkFig7b(b *testing.B) { benchFigure(b, "fig7b") }

// Figure 8a: precision vs retained dimensionality (synthetic).
func BenchmarkFig8a(b *testing.B) { benchFigure(b, "fig8a") }

// Figure 8b: precision vs retained dimensionality (color histograms).
func BenchmarkFig8b(b *testing.B) { benchFigure(b, "fig8b") }

// Figure 9a: page I/O per query vs dimensionality (synthetic).
func BenchmarkFig9a(b *testing.B) { benchFigure(b, "fig9a") }

// Figure 9b: page I/O per query vs dimensionality (color histograms).
func BenchmarkFig9b(b *testing.B) { benchFigure(b, "fig9b") }

// Figure 10a: CPU cost per query vs dimensionality (synthetic).
func BenchmarkFig10a(b *testing.B) { benchFigure(b, "fig10a") }

// Figure 10b: CPU cost per query vs dimensionality (color histograms).
func BenchmarkFig10b(b *testing.B) { benchFigure(b, "fig10b") }

// Figure 11a: MMDR total response time vs data size (plain vs scalable).
func BenchmarkFig11a(b *testing.B) { benchFigure(b, "fig11a") }

// Figure 11b: MMDR total response time vs dimensionality.
func BenchmarkFig11b(b *testing.B) { benchFigure(b, "fig11b") }

// Ablations for the design choices DESIGN.md calls out.
func BenchmarkAblationLookupTable(b *testing.B)    { benchFigure(b, "ablation-lookup") }
func BenchmarkAblationNormalizedMaha(b *testing.B) { benchFigure(b, "ablation-normalized") }
func BenchmarkAblationMultiLevel(b *testing.B)     { benchFigure(b, "ablation-multilevel") }

// benchData builds a reusable workload for the micro-benchmarks.
func benchData(b *testing.B, n, dim int) ([]float64, int) {
	b.Helper()
	cfg := datagen.CorrelatedConfig{
		N: n, Dim: dim, NumClusters: 6, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.8, Seed: 9,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		b.Fatal(err)
	}
	datagen.Normalize(ds)
	return ds.Data, ds.Dim
}

// BenchmarkReduceMMDR measures the full MMDR pipeline on 4k x 32-d data.
func BenchmarkReduceMMDR(b *testing.B) {
	data, dim := benchData(b, 4000, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mmdr.Reduce(data, dim, mmdr.WithSeed(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReduceScalable measures the streamed variant on the same data.
func BenchmarkReduceScalable(b *testing.B) {
	data, dim := benchData(b, 4000, 32)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := mmdr.Reduce(data, dim,
			mmdr.WithMethod(mmdr.MethodMMDRScalable),
			mmdr.WithSeed(int64(i)), mmdr.WithStreamFraction(0.1))
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexBuild measures extended-iDistance construction.
func BenchmarkIndexBuild(b *testing.B) {
	data, dim := benchData(b, 4000, 32)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := model.NewIndex(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNN10 measures a 10-NN query through the full stack.
func BenchmarkKNN10(b *testing.B) {
	data, dim := benchData(b, 8000, 32)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.FromData(dim, data)
	if err != nil {
		b.Fatal(err)
	}
	queries := datagen.SampleQueries(ds, 128, 0.002, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.KNN(queries.Point(i%queries.N), 10)
	}
}

// BenchmarkInsert measures dynamic insertion.
func BenchmarkInsert(b *testing.B) {
	data, dim := benchData(b, 4000, 32)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		b.Fatal(err)
	}
	p := model.Point(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p[0] += 1e-9
		if _, err := idx.Insert(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildParallel measures the full MMDR build at increasing worker
// counts. The models are identical at every setting (see parallel_test.go);
// only wall clock changes, and only when GOMAXPROCS > 1.
func BenchmarkBuildParallel(b *testing.B) {
	data, dim := benchData(b, 4000, 32)
	for _, p := range []int{1, 2, 4, 8} {
		b.Run("workers-"+itoa(p), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1), mmdr.WithParallelism(p)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBatchKNN measures the batched query engine: one BatchKNN call
// answering a whole workload, and — via SetParallelism/RunParallel —
// several concurrent batch callers sharing one index, the ConcurrentIndex
// read-path shape.
func BenchmarkBatchKNN(b *testing.B) {
	data, dim := benchData(b, 8000, 32)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		b.Fatal(err)
	}
	ds, err := dataset.FromData(dim, data)
	if err != nil {
		b.Fatal(err)
	}
	qs := datagen.SampleQueries(ds, 64, 0.002, 3)
	workload := make([]float64, 0, qs.N*dim)
	for i := 0; i < qs.N; i++ {
		workload = append(workload, qs.Point(i)...)
	}

	b.Run("batch-64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := idx.BatchKNN(workload, 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent-callers", func(b *testing.B) {
		small := workload[:8*dim]
		b.SetParallelism(4)
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				if _, err := idx.BatchKNN(small, 10); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkBTreePageSize sweeps the B+-tree page size (ablation: page-size
// sensitivity of the index).
func BenchmarkBTreePageSize(b *testing.B) {
	data, dim := benchData(b, 8000, 32)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(1))
	if err != nil {
		b.Fatal(err)
	}
	for _, ps := range []int{2048, 8192, 32768} {
		b.Run(byteSizeName(ps), func(b *testing.B) {
			idx, err := model.NewIndex(mmdr.WithPageSize(ps))
			if err != nil {
				b.Fatal(err)
			}
			q := model.Point(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.KNN(q, 10)
			}
		})
	}
}

func byteSizeName(n int) string {
	switch {
	case n >= 1024:
		return itoa(n/1024) + "KiB"
	default:
		return itoa(n) + "B"
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// Extension experiments (features the paper describes but does not
// evaluate; see EXPERIMENTS.md).
func BenchmarkExtInsertion(b *testing.B) { benchFigure(b, "ext-insertion") }
func BenchmarkExtApprox(b *testing.B)    { benchFigure(b, "ext-approx") }

// Reduction-benefit comparison: iMMDR vs raw full-dimensional iDistance.
func BenchmarkExtRaw(b *testing.B) { benchFigure(b, "ext-raw") }
