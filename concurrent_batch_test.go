package mmdr_test

import (
	"reflect"
	"sync"
	"testing"

	"mmdr"
	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/iostat"
)

// TestConcurrentBatchKNNDuringMaintenance runs whole query batches through
// ConcurrentIndex while writers insert and delete. Each batch holds the
// read lock for its full duration, so its answers must be internally
// consistent (every query sees the same snapshot); run with -race to
// validate the locking discipline of the batch path.
func TestConcurrentBatchKNNDuringMaintenance(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 301)
	var ctr mmdr.CostCounter
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(11), mmdr.WithCostCounter(&ctr), mmdr.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	idx := mmdr.Concurrent(raw)

	// Materialize query workloads up front: Insert grows the model's
	// backing data, so nothing may read it concurrently.
	workloads := make([][]float64, 4)
	for w := range workloads {
		flat := make([]float64, 0, 12*dim)
		for i := 0; i < 12; i++ {
			flat = append(flat, model.Point((w*53+i*7)%900)...)
		}
		workloads[w] = flat
	}

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 8; round++ {
				batch, err := idx.BatchKNN(workloads[g], 5)
				if err != nil {
					errs <- err
					return
				}
				for _, res := range batch {
					if len(res) == 0 {
						errs <- errEmpty
						return
					}
				}
				if _, err := idx.BatchRange(workloads[g], 0.05); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Insert payloads are materialized before the writers start: Model.Point
	// reads the backing data Insert grows, so it must not run concurrently
	// with them.
	inserts := make([][][]float64, 2)
	for g := range inserts {
		inserts[g] = make([][]float64, 15)
		for i := range inserts[g] {
			p := model.Point((g*211 + i) % 500)
			p[0] += 1e-5 * float64(i+1)
			inserts[g][i] = p
		}
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, p := range inserts[g] {
				if _, err := idx.Insert(p); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 900; i < 940; i++ {
			if _, err := idx.Delete(i); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if ctr.Metrics().DistanceOps == 0 {
		t.Fatal("counter saw no work")
	}
}

// TestParallelBuildsShareTeedCounter runs two multi-worker MMDR builds
// concurrently, both counting into the same Tee of two atomic counters —
// the worst case for the counting discipline: parallel workers inside each
// build flush goroutine-local tallies into a sink that a second build is
// writing at the same time. Both tee targets must agree exactly, and each
// build must produce the same model as its serial twin.
func TestParallelBuildsShareTeedCounter(t *testing.T) {
	var a, b iostat.AtomicCounter
	shared := iostat.Tee(&a, &b)

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	counts := make([]int, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := datagen.CorrelatedConfig{N: 900, Dim: 14, NumClusters: 3, SDim: 2, VarRatio: 20, Seed: 400 + int64(g)}
			ds, _, err := cfg.Generate()
			if err != nil {
				errs <- err
				return
			}
			datagen.Normalize(ds)
			reducer := core.New(core.Params{Seed: int64(g) + 1, MaxEC: 5, Parallelism: 4, Counter: shared})
			red, err := reducer.Reduce(ds)
			if err != nil {
				errs <- err
				return
			}
			counts[g] = len(red.Subspaces)
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g, c := range counts {
		if c == 0 {
			t.Fatalf("build %d produced no subspaces", g)
		}
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if !reflect.DeepEqual(sa, sb) {
		t.Fatalf("tee targets diverged:\n  a: %s\n  b: %s", sa.String(), sb.String())
	}
	if sa.DistanceOps == 0 {
		t.Fatalf("builds counted no distance work: %s", sa.String())
	}
}
