package mmdr

import (
	"fmt"

	"mmdr/internal/pool"
)

// WithParallelism bounds the worker goroutines the library uses: the
// parallel phases of reduction (clustering restarts, point assignment,
// covariance fits, per-cluster PCA, subspace assembly) and the batch query
// engine (BatchKNN, BatchRange). n <= 0 selects runtime.NumCPU() — the
// default when the option is absent. n = 1 runs the exact serial code
// path.
//
// Parallelism never changes results: work is partitioned by index and
// every floating-point reduction happens in serial order, so a model built
// at any parallelism is identical to the serial one, and batch answers
// match a sequential query loop. The only observable difference is
// tracing: clustering-restart spans require parallelism <= 1 (Tracer is
// single-goroutine by contract, so fanned-out restarts run untraced).
func WithParallelism(n int) Option {
	return func(c *config) { c.parallelism = pool.Workers(n) }
}

// Parallelism reports the resolved worker bound the model was built with.
func (m *Model) Parallelism() int { return resolveParallelism(m.cfg) }

// resolveParallelism returns the worker bound a config implies: the
// WithParallelism setting, or all cores when the option was never given.
func resolveParallelism(cfg config) int { return pool.Workers(cfg.parallelism) }

// splitQueries validates a flat row-major query workload and slices it
// into per-query vectors (views into the input, no copies).
func splitQueries(queries []float64, dim int) ([][]float64, error) {
	if len(queries) == 0 || len(queries)%dim != 0 {
		return nil, fmt.Errorf("mmdr: queries length %d not a multiple of dim %d", len(queries), dim)
	}
	n := len(queries) / dim
	out := make([][]float64, n)
	for i := range out {
		out[i] = queries[i*dim : (i+1)*dim]
	}
	return out, nil
}

// BatchKNN answers a workload of KNN queries concurrently. queries is flat
// row-major — query i occupies queries[i*Dim:(i+1)*Dim], the same layout
// as EvaluatePrecision — and the result at position i is exactly what
// KNN(query i, k) returns: batching changes throughput, never answers.
// Cost counters attached via WithCostCounter are atomic and keep exact
// totals across the concurrent queries.
//
// On the extended iDistance index the batch runs through the fused blocked
// kernels: each partition scan serves a whole tile of queries from one pass
// over the partition's vector block (see internal/idist). Seq-scan indexes
// fall back to a plain parallel per-query loop.
func (idx *Index) BatchKNN(queries []float64, k int) ([][]Neighbor, error) {
	qs, err := splitQueries(queries, idx.model.ds.Dim)
	if err != nil {
		return nil, err
	}
	if idx.maint != nil {
		return idx.maint.BatchKNN(qs, k, idx.parallelism), nil
	}
	out := make([][]Neighbor, len(qs))
	pool.Run(idx.parallelism, len(qs), func(i int) {
		out[i] = idx.idx.KNN(qs[i], k)
	})
	return out, nil
}

// BatchRange answers a workload of range queries (radius r) concurrently.
// queries is flat row-major like BatchKNN; out[i] matches Range(query i, r)
// exactly. Only the extended iDistance index supports range queries.
func (idx *Index) BatchRange(queries []float64, r float64) ([][]Neighbor, error) {
	if idx.maint == nil {
		return nil, fmt.Errorf("mmdr: %s index does not support range queries", idx.Name())
	}
	qs, err := splitQueries(queries, idx.model.ds.Dim)
	if err != nil {
		return nil, err
	}
	return idx.maint.BatchRange(qs, r, idx.parallelism), nil
}

// BatchKNN answers a workload of KNN queries concurrently while other
// goroutines insert and delete: the whole batch runs under the shared read
// lock, so it sees one consistent snapshot of the index.
func (c *ConcurrentIndex) BatchKNN(queries []float64, k int) ([][]Neighbor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.BatchKNN(queries, k)
}

// BatchRange answers a workload of range queries concurrently under the
// shared read lock (one consistent snapshot, like BatchKNN).
func (c *ConcurrentIndex) BatchRange(queries []float64, r float64) ([][]Neighbor, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idx.BatchRange(queries, r)
}
