package mmdr

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"mmdr/internal/dataset"
	"mmdr/internal/quant"
	"mmdr/internal/reduction"
)

// modelFile is the gob-serialized form of a Model. All referenced types
// (dataset.Dataset, reduction.Result, matrix.Mat) have exported fields, so
// stdlib gob round-trips them without custom codecs. The persistdrift
// analyzer audits the envelope: every field must be written by Save and
// read back (or validated) by Load, so the struct and the two functions
// cannot drift apart.
//
//mmdr:persist save=Save load=Load
type modelFile struct {
	Version int
	Method  string
	Dim     int
	Data    *dataset.Dataset
	Result  *reduction.Result
	// Quant is the trained product quantizer, nil when the model has none.
	// Optional fields decode as nil from older files, so the version is
	// unchanged.
	Quant *quant.Set
}

const modelFileVersion = 1

// Save serializes the model — data and reduction — to w.
func (m *Model) Save(w io.Writer) error {
	enc := gob.NewEncoder(w)
	return enc.Encode(modelFile{
		Version: modelFileVersion,
		Method:  m.method,
		Dim:     m.ds.Dim,
		Data:    m.ds,
		Result:  m.result,
		Quant:   m.quant,
	})
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := gob.NewDecoder(r).Decode(&mf); err != nil {
		return nil, fmt.Errorf("mmdr: decoding model: %w", err)
	}
	if mf.Version != modelFileVersion {
		return nil, fmt.Errorf("mmdr: unsupported model file version %d", mf.Version)
	}
	if mf.Data == nil || mf.Result == nil {
		return nil, fmt.Errorf("mmdr: corrupt model file")
	}
	if mf.Dim != mf.Data.Dim {
		return nil, fmt.Errorf("mmdr: corrupt model file: header dim %d != dataset dim %d", mf.Dim, mf.Data.Dim)
	}
	m := &Model{ds: mf.Data, result: mf.Result, method: mf.Method, quant: mf.Quant}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mmdr: loaded model invalid: %w", err)
	}
	// The query kernel caches (transposed basis, Cholesky factor of CovInv)
	// live in unexported fields gob does not carry; rebuild them so a loaded
	// model queries on the same fast paths as a freshly built one. The
	// quantizer's table offsets are the same kind of derived state.
	for _, s := range m.result.Subspaces {
		s.EnsureKernels()
	}
	if m.quant != nil {
		m.quant.EnsureKernels()
		if err := m.quant.Validate(); err != nil {
			return nil, fmt.Errorf("mmdr: loaded quantizer invalid: %w", err)
		}
	}
	return m, nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
