package mmdr

import (
	"math/rand"
	"reflect"
	"testing"

	"mmdr/internal/datagen"
)

// This file locks down the parallelism contract: a model built at any
// WithParallelism setting is IDENTICAL — not approximately equal — to the
// serial one, and the batch query engine returns exactly what a sequential
// query loop returns. The comparisons are exact float64 equality on every
// stored array, which is what the determinism design promises (work
// partitioned by index, every floating-point reduction in serial order).

// parallelTestData builds a normalized locally-correlated dataset.
func parallelTestData(t *testing.T, n, dim, clusters int, seed int64) ([]float64, int) {
	t.Helper()
	cfg := datagen.CorrelatedConfig{
		N: n, Dim: dim, NumClusters: clusters, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.8, Seed: seed,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	datagen.Normalize(ds)
	return ds.Data, ds.Dim
}

// requireIdenticalModels fails unless the two models' reductions match in
// every stored bit: subspace identity, membership, retained dimensionality,
// bases, centroids, reduced coordinates, radii, and the outlier set.
func requireIdenticalModels(t *testing.T, want, got *Model, label string) {
	t.Helper()
	w, g := want.result, got.result
	if len(w.Subspaces) != len(g.Subspaces) {
		t.Fatalf("%s: %d subspaces, serial has %d", label, len(g.Subspaces), len(w.Subspaces))
	}
	if !reflect.DeepEqual(w.Outliers, g.Outliers) {
		t.Fatalf("%s: outlier sets differ", label)
	}
	for i, ws := range w.Subspaces {
		gs := g.Subspaces[i]
		if ws.ID != gs.ID || ws.Dr != gs.Dr {
			t.Fatalf("%s: subspace %d identity differs: id %d/%d dr %d/%d",
				label, i, gs.ID, ws.ID, gs.Dr, ws.Dr)
		}
		if !reflect.DeepEqual(ws.Members, gs.Members) {
			t.Fatalf("%s: subspace %d member lists differ", label, i)
		}
		if !reflect.DeepEqual(ws.Centroid, gs.Centroid) {
			t.Fatalf("%s: subspace %d centroids differ", label, i)
		}
		if !reflect.DeepEqual(ws.Basis.Data, gs.Basis.Data) {
			t.Fatalf("%s: subspace %d bases differ", label, i)
		}
		if !reflect.DeepEqual(ws.Coords, gs.Coords) {
			t.Fatalf("%s: subspace %d reduced coordinates differ", label, i)
		}
		if ws.MaxRadius != gs.MaxRadius || ws.MPE != gs.MPE || ws.MahaRadius != gs.MahaRadius || ws.LogDet != gs.LogDet {
			t.Fatalf("%s: subspace %d derived stats differ", label, i)
		}
		// LDR subspaces carry no covariance shape; MMDR's must match exactly.
		if (ws.CovInv == nil) != (gs.CovInv == nil) {
			t.Fatalf("%s: subspace %d covariance presence differs", label, i)
		}
		if ws.CovInv != nil && !reflect.DeepEqual(ws.CovInv.Data, gs.CovInv.Data) {
			t.Fatalf("%s: subspace %d covariance inverses differ", label, i)
		}
	}
}

// buildAt reduces the same data at a given parallelism.
func buildAt(t *testing.T, data []float64, dim int, p int, extra ...Option) *Model {
	t.Helper()
	opts := append([]Option{WithSeed(7), WithParallelism(p)}, extra...)
	m, err := Reduce(data, dim, opts...)
	if err != nil {
		t.Fatalf("parallelism %d: %v", p, err)
	}
	return m
}

func TestParallelBuildEquivalenceMMDR(t *testing.T) {
	data, dim := parallelTestData(t, 1500, 24, 4, 42)
	serial := buildAt(t, data, dim, 1)
	if err := serial.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8} {
		requireIdenticalModels(t, serial, buildAt(t, data, dim, p), "MMDR P="+itoa(p))
	}
}

func TestParallelBuildEquivalenceLDR(t *testing.T) {
	data, dim := parallelTestData(t, 1500, 24, 4, 43)
	serial := buildAt(t, data, dim, 1, WithMethod(MethodLDR))
	for _, p := range []int{2, 8} {
		requireIdenticalModels(t, serial,
			buildAt(t, data, dim, p, WithMethod(MethodLDR)), "LDR P="+itoa(p))
	}
}

func TestParallelBuildEquivalenceScalable(t *testing.T) {
	data, dim := parallelTestData(t, 1500, 24, 4, 44)
	serial := buildAt(t, data, dim, 1, WithMethod(MethodMMDRScalable))
	for _, p := range []int{2, 8} {
		requireIdenticalModels(t, serial,
			buildAt(t, data, dim, p, WithMethod(MethodMMDRScalable)), "scalable P="+itoa(p))
	}
}

// TestBatchKNNMatchesSequential requires that BatchKNN over the extended
// iDistance index returns, per query, exactly the neighbors and distances
// of a sequential KNN loop — at several parallelism settings.
func TestBatchKNNMatchesSequential(t *testing.T) {
	data, dim := parallelTestData(t, 1200, 16, 3, 45)
	queries := makeQueries(data, dim, 40, 46)
	for _, p := range []int{1, 2, 8} {
		model := buildAt(t, data, dim, p)
		idx, err := model.NewIndex()
		if err != nil {
			t.Fatal(err)
		}
		batch, err := idx.BatchKNN(queries, 10)
		if err != nil {
			t.Fatal(err)
		}
		nq := len(queries) / dim
		if len(batch) != nq {
			t.Fatalf("P=%d: %d results for %d queries", p, len(batch), nq)
		}
		for qi := 0; qi < nq; qi++ {
			want := idx.KNN(queries[qi*dim:(qi+1)*dim], 10)
			if !reflect.DeepEqual(want, batch[qi]) {
				t.Fatalf("P=%d query %d: batch answer differs from sequential\nwant %v\ngot  %v",
					p, qi, want, batch[qi])
			}
		}
	}
}

// TestBatchRangeMatchesSequential is the range-query counterpart.
func TestBatchRangeMatchesSequential(t *testing.T) {
	data, dim := parallelTestData(t, 1200, 16, 3, 47)
	queries := makeQueries(data, dim, 30, 48)
	model := buildAt(t, data, dim, 8)
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	const r = 0.25
	batch, err := idx.BatchRange(queries, r)
	if err != nil {
		t.Fatal(err)
	}
	for qi := 0; qi < len(queries)/dim; qi++ {
		want, err := idx.Range(queries[qi*dim:(qi+1)*dim], r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, batch[qi]) {
			t.Fatalf("query %d: batch range differs from sequential", qi)
		}
	}
}

// TestBatchQueryValidationAndSeqScan covers the API edges: malformed
// workloads error, the sequential-scan index answers BatchKNN but rejects
// BatchRange, and a batch through ConcurrentIndex matches the plain index.
func TestBatchQueryValidationAndSeqScan(t *testing.T) {
	data, dim := parallelTestData(t, 800, 12, 2, 49)
	queries := makeQueries(data, dim, 10, 50)
	model := buildAt(t, data, dim, 4)

	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.BatchKNN(queries[:dim-1], 5); err == nil {
		t.Fatal("BatchKNN accepted a workload not divisible by dim")
	}
	if _, err := idx.BatchRange(nil, 0.1); err == nil {
		t.Fatal("BatchRange accepted an empty workload")
	}

	scan := model.NewSeqScan()
	scanBatch, err := scan.BatchKNN(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	for qi := range scanBatch {
		want := scan.KNN(queries[qi*dim:(qi+1)*dim], 5)
		if !reflect.DeepEqual(want, scanBatch[qi]) {
			t.Fatalf("seq-scan batch query %d differs", qi)
		}
	}
	if _, err := scan.BatchRange(queries, 0.1); err == nil {
		t.Fatal("seq-scan BatchRange should be unsupported")
	}

	conc := Concurrent(idx)
	concBatch, err := conc.BatchKNN(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := idx.BatchKNN(queries, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain, concBatch) {
		t.Fatal("ConcurrentIndex batch differs from plain index batch")
	}
}

// makeQueries draws nq query points near the data distribution.
func makeQueries(data []float64, dim, nq int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	n := len(data) / dim
	out := make([]float64, 0, nq*dim)
	for i := 0; i < nq; i++ {
		base := data[rng.Intn(n)*dim:][:dim]
		for _, v := range base {
			out = append(out, v+0.01*rng.NormFloat64())
		}
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
