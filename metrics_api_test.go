package mmdr_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mmdr"
)

// TestWithRuntimeMetrics exercises the public metrics wiring end to end:
// build phases and index operations record into one registry, the snapshot
// carries quantiles, and the Prometheus exposition renders them.
func TestWithRuntimeMetrics(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 301)
	reg := mmdr.NewRuntimeMetrics()
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(3), mmdr.WithRuntimeMetrics(reg))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := model.Point(7)
	for i := 0; i < 5; i++ {
		idx.KNN(q, 10)
	}
	if _, err := idx.Range(q, 0.4); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	var sawBuildPhase, sawKNN, sawRange bool
	for _, o := range s.Ops {
		switch {
		case strings.HasPrefix(o.Name, "build:"):
			sawBuildPhase = true
		case o.Name == "knn":
			sawKNN = true
			if o.Count != 5 {
				t.Errorf("knn count = %d, want 5", o.Count)
			}
			if o.P50US <= 0 || o.P99US < o.P50US || o.MaxUS < o.P99US {
				t.Errorf("knn quantiles not ordered: p50=%v p99=%v max=%v", o.P50US, o.P99US, o.MaxUS)
			}
		case o.Name == "range":
			sawRange = true
		}
	}
	if !sawBuildPhase || !sawKNN || !sawRange {
		t.Fatalf("snapshot missing ops (build=%v knn=%v range=%v): %+v", sawBuildPhase, sawKNN, sawRange, s.Ops)
	}
	var gotPoints bool
	for _, g := range s.Gauges {
		if g.Name == "index_points" && g.Value == int64(model.N()) {
			gotPoints = true
		}
	}
	if !gotPoints {
		t.Errorf("index_points gauge missing or wrong: %+v", s.Gauges)
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`mmdr_op_latency_seconds_count{op="knn"} 5`,
		`mmdr_op_latency_quantile_seconds{op="knn",quantile="0.99"}`,
		`mmdr_gauge{name="index_points"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus exposition missing %q", want)
		}
	}
}

// TestSetRuntimeMetricsAndSlowCapture attaches a registry to an already-
// built index, pins an artificially slow policy, and checks the slow-query
// log carries the KNNTrace explain — the public view of tail capture.
func TestSetRuntimeMetricsAndSlowCapture(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 301)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	reg := mmdr.NewRuntimeMetrics()
	idx.SetRuntimeMetrics(reg)
	reg.Op("knn").SetSlowPolicy(time.Nanosecond, 0) // every query is "slow"

	q := model.Point(3)
	idx.KNN(q, 10)
	if got := reg.Slow().Total(); got != 1 {
		t.Fatalf("slow captures = %d, want 1", got)
	}
	sq := reg.Slow().Queries()[0]
	tr, ok := sq.Trace.(*mmdr.KNNTrace)
	if !ok || tr == nil {
		t.Fatalf("slow capture trace is %T, want *mmdr.KNNTrace", sq.Trace)
	}
	if tr.Rounds < 1 || len(tr.Partitions) == 0 {
		t.Errorf("capture trace not populated: %+v", tr)
	}

	// Detach: no further samples.
	idx.SetRuntimeMetrics(nil)
	idx.KNN(q, 10)
	if got := reg.Op("knn").Count(); got != 1 {
		t.Errorf("detached index recorded: count = %d, want 1", got)
	}
}

// TestConcurrentIndexRuntimeMetrics attaches mid-flight through the
// concurrent wrapper and checks batch queries record per-query samples.
func TestConcurrentIndexRuntimeMetrics(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 301)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	c := mmdr.Concurrent(idx)
	reg := mmdr.NewRuntimeMetrics()
	c.SetRuntimeMetrics(reg)

	queries := make([]float64, 0, 8*dim)
	for i := 0; i < 8; i++ {
		queries = append(queries, model.Point(i)...)
	}
	if _, err := c.BatchKNN(queries, 5); err != nil {
		t.Fatal(err)
	}
	// Root BatchKNN fans out through single KNN calls: 8 knn samples.
	if got := reg.Op("knn").Count(); got != 8 {
		t.Errorf("knn count after batch = %d, want 8", got)
	}
	if _, err := c.Insert(model.Point(0)); err != nil {
		t.Fatal(err)
	}
	if got := reg.Op("insert").Count(); got != 1 {
		t.Errorf("insert count = %d, want 1", got)
	}
}
