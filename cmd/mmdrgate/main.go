// Command mmdrgate enforces the repo's compiler contracts: it rebuilds the
// hot-path packages with -gcflags='-m=2 -d=ssa/check_bce/debug=1', parses
// the escape/bounds-check/inlining diagnostics, and checks them against
// the committed manifest in internal/analysis/gate/contracts.
//
// Modes:
//
//	mmdrgate          enforce contracts; unknown diagnostics and
//	                  toolchain drift degrade to warnings (exit 1 on
//	                  violations)
//	mmdrgate -strict  additionally fail on manifest coverage gaps and
//	                  report loose budgets (local / make gate)
//	mmdrgate -warn    report everything, always exit 0 (CI)
//
// Where mmdrlint checks what the source says, mmdrgate checks what the
// compiler decided. See DESIGN.md §11.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mmdr/internal/analysis/gate"
)

func main() {
	var (
		strict   = flag.Bool("strict", false, "fail on manifest coverage gaps and warn on loose budgets")
		warn     = flag.Bool("warn", false, "report findings but always exit 0 (CI mode)")
		verbose  = flag.Bool("v", false, "print the per-function diagnostic summary")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON")
		manifest = flag.String("contracts", "", "override the embedded contract manifest (path to JSON)")
		dir      = flag.String("C", ".", "directory inside the module to gate")
	)
	flag.Parse()

	res, err := gate.Run(gate.Options{
		Dir:          *dir,
		ManifestPath: *manifest,
		Strict:       *strict,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmdrgate: %v\n", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintf(os.Stderr, "mmdrgate: %v\n", err)
			os.Exit(2)
		}
	} else {
		res.Print(os.Stdout, *verbose)
	}

	switch {
	case len(res.Violations) == 0:
		if !*jsonOut {
			mode := "contract"
			if *strict {
				mode = "strict contract"
			}
			fmt.Printf("mmdrgate: %s clean (%d functions gated, %d warnings, %s)\n",
				mode, len(res.Funcs), len(res.Warnings), res.GoVersion)
		}
	case *warn:
		if !*jsonOut {
			fmt.Printf("mmdrgate: %d violation(s) reported in warn mode\n", len(res.Violations))
		}
	default:
		if !*jsonOut {
			fmt.Printf("mmdrgate: %d violation(s)\n", len(res.Violations))
		}
		os.Exit(1)
	}
}
