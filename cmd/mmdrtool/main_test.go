package main

import (
	"path/filepath"
	"testing"

	"mmdr/internal/dataset"
)

func TestGenReduceInspectKNNPipeline(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "ds.bin")
	model := filepath.Join(dir, "m.mmdr")

	if err := cmdGen([]string{"-out", data, "-n", "800", "-dim", "16", "-clusters", "3", "-sdim", "2", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.LoadBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if ds.N != 800 || ds.Dim != 16 {
		t.Fatalf("generated %dx%d", ds.N, ds.Dim)
	}
	if err := cmdReduce([]string{"-in", data, "-out", model, "-method", "mmdr", "-seed", "4"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-model", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdInspect([]string{"-defaults"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKNN([]string{"-model", model, "-row", "5", "-k", "3"}); err != nil {
		t.Fatal(err)
	}
	// The -metrics-json paths attach the process registry and dump its
	// snapshot to stderr; they must not disturb the results.
	if err := cmdReduce([]string{"-in", data, "-out", model, "-seed", "4", "-metrics-json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKNN([]string{"-model", model, "-row", "5", "-k", "3", "-metrics-json"}); err != nil {
		t.Fatal(err)
	}
	// Quantized mode: trains a default quantizer on the fly for model files
	// saved without one, solo and through the fused batch path.
	if err := cmdKNN([]string{"-model", model, "-row", "5", "-k", "3", "-quantized", "-budget", "60", "-metrics-json"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKNN([]string{"-model", model, "-rows", "5,9,13", "-k", "3", "-quantized"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKNN([]string{"-model", model, "-row", "5", "-quantized", "-explain"}); err == nil {
		t.Fatal("expected -quantized -explain to be rejected")
	}
}

func TestGenKinds(t *testing.T) {
	dir := t.TempDir()
	for _, kind := range []string{"histogram", "uniform"} {
		out := filepath.Join(dir, kind+".bin")
		if err := cmdGen([]string{"-out", out, "-n", "100", "-dim", "8", "-kind", kind}); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
	}
	if err := cmdGen([]string{"-out", filepath.Join(dir, "x.bin"), "-kind", "nope"}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if err := cmdGen(nil); err == nil {
		t.Fatal("expected error for missing -out")
	}
}

func TestReduceErrors(t *testing.T) {
	if err := cmdReduce(nil); err == nil {
		t.Fatal("expected error for missing flags")
	}
	if err := cmdReduce([]string{"-in", "/does/not/exist", "-out", "/tmp/x"}); err == nil {
		t.Fatal("expected error for missing input")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "d.bin")
	if err := cmdGen([]string{"-out", data, "-n", "200", "-dim", "8", "-clusters", "2", "-sdim", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReduce([]string{"-in", data, "-out", filepath.Join(dir, "m"), "-method", "bogus"}); err == nil {
		t.Fatal("expected error for unknown method")
	}
}

func TestParseMethod(t *testing.T) {
	cases := map[string]string{
		"mmdr": "MMDR", "MMDR": "MMDR", "ldr": "LDR", "gdr": "GDR",
		"scalable": "MMDR-scalable", "mmdr-scalable": "MMDR-scalable",
	}
	for in, want := range cases {
		m, err := parseMethod(in)
		if err != nil {
			t.Fatalf("%q: %v", in, err)
		}
		if m.String() != want {
			t.Fatalf("%q -> %v, want %s", in, m, want)
		}
	}
	if _, err := parseMethod("xyz"); err == nil {
		t.Fatal("expected error")
	}
}

func TestKNNErrors(t *testing.T) {
	if err := cmdKNN(nil); err == nil {
		t.Fatal("expected error for missing -model")
	}
	dir := t.TempDir()
	data := filepath.Join(dir, "d.bin")
	model := filepath.Join(dir, "m.mmdr")
	if err := cmdGen([]string{"-out", data, "-n", "300", "-dim", "8", "-clusters", "2", "-sdim", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReduce([]string{"-in", data, "-out", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdKNN([]string{"-model", model}); err == nil {
		t.Fatal("expected error when neither -query nor -row given")
	}
	if err := cmdKNN([]string{"-model", model, "-row", "99999"}); err == nil {
		t.Fatal("expected error for out-of-range row")
	}
	if err := cmdKNN([]string{"-model", model, "-query", "1,2"}); err == nil {
		t.Fatal("expected error for wrong query dimensionality")
	}
	if err := cmdKNN([]string{"-model", model, "-query", "a,b,c,d,e,f,g,h"}); err == nil {
		t.Fatal("expected error for non-numeric query")
	}
	// A correct explicit query works.
	if err := cmdKNN([]string{"-model", model, "-query", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8", "-k", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestInspectErrors(t *testing.T) {
	if err := cmdInspect(nil); err == nil {
		t.Fatal("expected error without -model or -defaults")
	}
	if err := cmdInspect([]string{"-model", "/does/not/exist"}); err == nil {
		t.Fatal("expected error for missing model")
	}
}

func TestEval(t *testing.T) {
	dir := t.TempDir()
	data := filepath.Join(dir, "d.bin")
	model := filepath.Join(dir, "m.mmdr")
	if err := cmdGen([]string{"-out", data, "-n", "500", "-dim", "12", "-clusters", "2", "-sdim", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdReduce([]string{"-in", data, "-out", model}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval([]string{"-model", model, "-queries", "20", "-k", "5"}); err != nil {
		t.Fatal(err)
	}
	if err := cmdEval(nil); err == nil {
		t.Fatal("expected error for missing -model")
	}
	if err := cmdEval([]string{"-model", model, "-queries", "0"}); err == nil {
		t.Fatal("expected error for zero queries")
	}
}
