// Command mmdrtool is the end-user CLI of the mmdr library: generate
// datasets, fit reduction models, inspect them, and run KNN queries.
//
// Subcommands:
//
//	mmdrtool gen -out data.bin -n 10000 -dim 64 -clusters 10 [-kind synthetic|histogram|uniform]
//	mmdrtool reduce -in data.bin -out model.mmdr [-method mmdr|mmdr-scalable|ldr|gdr]
//	mmdrtool reduce -in data.bin -out model.mmdr -trace [-metrics-json] [-pprof localhost:0]
//	mmdrtool inspect -model model.mmdr
//	mmdrtool inspect -defaults
//	mmdrtool knn -model model.mmdr -k 10 [-query "0.1,0.2,..."] [-row 17] [-rows "3,17,42"] [-explain] [-metrics-json]
//	mmdrtool knn -model model.mmdr -k 10 -row 17 -quantized [-budget 200]
//	mmdrtool eval -model model.mmdr -queries 100 -k 10
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"mmdr"
	"mmdr/internal/core"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/metrics"
	"mmdr/internal/obs"
)

// procMetrics is the process-wide runtime-metrics registry; build phases and
// KNN operations record into it, and the /metrics route on the debug server
// plus the -metrics-json dumps read it.
var procMetrics = metrics.NewRegistry()

func init() {
	obs.Publish("mmdr.metrics", func() any { return procMetrics.Snapshot() })
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "reduce":
		err = cmdReduce(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "knn":
		err = cmdKNN(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "mmdrtool: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmdrtool: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: mmdrtool <gen|reduce|inspect|knn> [flags]

  gen      generate a dataset file (binary format)
  reduce   fit a dimensionality-reduction model over a dataset
  inspect  describe a model file, or print the paper's Table 1 defaults
  knn      run a K-nearest-neighbor query against a model
  eval     measure a model's KNN precision against exact search

run "mmdrtool <subcommand> -h" for flags`)
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out      = fs.String("out", "", "output dataset path (required)")
		n        = fs.Int("n", 10000, "number of points")
		dim      = fs.Int("dim", 64, "dimensionality")
		clusters = fs.Int("clusters", 10, "number of correlated clusters")
		sdim     = fs.Int("sdim", 4, "intrinsic dimensionality per cluster")
		ratio    = fs.Float64("ratio", 32, "variance ratio (ellipticity control)")
		kind     = fs.String("kind", "synthetic", "synthetic, histogram or uniform")
		seed     = fs.Int64("seed", 1, "random seed")
	)
	fs.Parse(args)
	if *out == "" {
		return fmt.Errorf("gen: -out is required")
	}
	var ds *dataset.Dataset
	switch *kind {
	case "synthetic":
		cfg := datagen.CorrelatedConfig{
			N: *n, Dim: *dim, NumClusters: *clusters, SDim: *sdim,
			VarRatio: *ratio, ScaleDecay: 0.75, Seed: *seed,
		}
		var err error
		ds, _, err = cfg.Generate()
		if err != nil {
			return err
		}
		datagen.Normalize(ds)
	case "histogram":
		ds = datagen.ColorHistogram(*n, *dim, *clusters, 0.15, *seed)
		datagen.Normalize(ds)
	case "uniform":
		ds = datagen.Uniform(*n, *dim, *seed)
	default:
		return fmt.Errorf("gen: unknown kind %q", *kind)
	}
	if err := ds.SaveBinary(*out); err != nil {
		return err
	}
	fmt.Printf("wrote %d points x %d dims to %s\n", ds.N, ds.Dim, *out)
	return nil
}

func parseMethod(s string) (mmdr.Method, error) {
	switch strings.ToLower(s) {
	case "mmdr":
		return mmdr.MethodMMDR, nil
	case "mmdr-scalable", "scalable":
		return mmdr.MethodMMDRScalable, nil
	case "ldr":
		return mmdr.MethodLDR, nil
	case "gdr":
		return mmdr.MethodGDR, nil
	}
	return 0, fmt.Errorf("unknown method %q (mmdr, mmdr-scalable, ldr, gdr)", s)
}

func cmdReduce(args []string) error {
	fs := flag.NewFlagSet("reduce", flag.ExitOnError)
	var (
		in     = fs.String("in", "", "input dataset path (required)")
		out    = fs.String("out", "", "output model path (required)")
		method = fs.String("method", "mmdr", "mmdr, mmdr-scalable, ldr or gdr")
		seed   = fs.Int64("seed", 1, "random seed")
		maxDim = fs.Int("maxdim", 0, "cap on retained dimensionality (0 = default 20)")
		forced = fs.Int("forcedim", 0, "force this retained dimensionality (0 = adaptive)")
		par    = fs.Int("parallel", 0, "worker goroutines for the build (0 = all cores, 1 = serial)")
		trace  = fs.Bool("trace", false, "print the pipeline phase tree (stderr)")
		mjson  = fs.Bool("metrics-json", false, "print reduction cost counters and runtime metrics as JSON (stderr)")
		pprof  = fs.String("pprof", "", "serve net/http/pprof and expvar on this address")
	)
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("reduce: -in and -out are required")
	}
	if *pprof != "" {
		srv, err := obs.StartDebugServer(*pprof, obs.Route{Path: "/metrics", Handler: metrics.Handler(procMetrics)})
		if err != nil {
			return fmt.Errorf("reduce: pprof server: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "pprof/expvar/metrics listening on http://%s/debug/pprof/\n", srv.Addr())
	}
	ds, err := dataset.LoadBinary(*in)
	if err != nil {
		return err
	}
	m, err := parseMethod(*method)
	if err != nil {
		return err
	}
	opts := []mmdr.Option{mmdr.WithMethod(m), mmdr.WithSeed(*seed), mmdr.WithParallelism(*par)}
	if *maxDim > 0 {
		opts = append(opts, mmdr.WithMaxDim(*maxDim))
	}
	if *forced > 0 {
		opts = append(opts, mmdr.WithForcedDim(*forced))
	}
	var collector *mmdr.TraceCollector
	if *trace {
		collector = mmdr.NewTraceCollector()
		opts = append(opts, mmdr.WithTracer(collector))
	}
	var ctr mmdr.CostCounter
	if *mjson {
		// The runtime-metrics registry turns the build phases into
		// build:<phase> latency ops alongside the logical cost counters.
		opts = append(opts, mmdr.WithCostCounter(&ctr), mmdr.WithRuntimeMetrics(procMetrics))
	}
	start := time.Now()
	model, err := mmdr.ReduceDataset(ds, opts...)
	if err != nil {
		return err
	}
	if err := model.SaveFile(*out); err != nil {
		return err
	}
	fmt.Printf("%s reduced %d points x %d dims in %v: %d subspaces (avg dim %.1f), %d outliers\n",
		model.Method(), model.N(), model.Dim(), time.Since(start).Round(time.Millisecond),
		len(model.Subspaces()), model.AvgDim(), len(model.Outliers()))
	if collector != nil {
		fmt.Fprintln(os.Stderr, "phase tree:")
		if err := collector.WriteTree(os.Stderr); err != nil {
			return err
		}
	}
	if *mjson {
		b, err := json.Marshal(&ctr)
		if err != nil {
			return err
		}
		snap := procMetrics.Snapshot()
		mb, err := json.Marshal(&snap)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "{\"costs\":%s,\"runtime_metrics\":%s}\n", b, mb)
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "", "model path")
		defaults  = fs.Bool("defaults", false, "print the paper's Table 1 defaults")
	)
	fs.Parse(args)
	if *defaults {
		p := core.DefaultParams()
		fmt.Printf("Table 1 defaults:\n")
		fmt.Printf("  beta (ProjDist threshold)   %.3f\n", p.Beta)
		fmt.Printf("  MaxMPE                      %.3f\n", p.MaxMPE)
		fmt.Printf("  MaxEC                       %d\n", p.MaxEC)
		fmt.Printf("  MaxDim                      %d\n", p.MaxDim)
		fmt.Printf("  epsilon (stream fraction)   %.3f\n", p.Epsilon)
		fmt.Printf("  xi (outlier fraction)       %.3f\n", p.Xi)
		fmt.Printf("  k (lookup-table IDs)        %d\n", p.LookupK)
		return nil
	}
	if *modelPath == "" {
		return fmt.Errorf("inspect: -model or -defaults required")
	}
	model, err := mmdr.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	fmt.Printf("method: %s\npoints: %d\ndims:   %d\navg retained dim: %.2f\noutliers: %d\n",
		model.Method(), model.N(), model.Dim(), model.AvgDim(), len(model.Outliers()))
	fmt.Println("subspaces:")
	for _, s := range model.Subspaces() {
		fmt.Printf("  #%d: %d points, d_r=%d, MPE=%.4f, radius=%.3f\n",
			s.ID, s.Points, s.Dim, s.MPE, s.MaxRadius)
	}
	return model.Validate()
}

func cmdKNN(args []string) error {
	fs := flag.NewFlagSet("knn", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "", "model path (required)")
		k         = fs.Int("k", 10, "number of neighbors")
		queryStr  = fs.String("query", "", "comma-separated query vector")
		row       = fs.Int("row", -1, "use dataset row as the query")
		rowsStr   = fs.String("rows", "", "comma-separated dataset rows: run the whole batch through the fused multi-query kernels")
		explain   = fs.Bool("explain", false, "print the structured query explain after the results")
		quantized = fs.Bool("quantized", false, "answer through the quantized (PQ/ADC) scan path with exact re-ranking")
		budget    = fs.Int("budget", 0, "candidate budget for -quantized (0 = 10x k); larger = higher recall, slower")
		mjson     = fs.Bool("metrics-json", false, "print the runtime-metrics snapshot as JSON (stderr)")
	)
	fs.Parse(args)
	if *modelPath == "" {
		return fmt.Errorf("knn: -model is required")
	}
	model, err := mmdr.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	if *budget <= 0 {
		*budget = 10 * *k
	}
	if *quantized && !model.HasQuantizer() {
		// Models saved before TrainQuantizer carry no codebooks; train with
		// the defaults so the flag works on any model file.
		fmt.Fprintln(os.Stderr, "knn: model has no trained quantizer; training one with defaults")
		if err := model.TrainQuantizer(mmdr.QuantizeConfig{}); err != nil {
			return err
		}
	}
	if *rowsStr != "" {
		if *explain {
			return fmt.Errorf("knn: -explain traces a single query; use -query or -row")
		}
		return batchKNN(model, *rowsStr, *k, *quantized, *budget, *mjson)
	}
	var q []float64
	switch {
	case *queryStr != "":
		for _, s := range strings.Split(*queryStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("knn: parsing query: %w", err)
			}
			q = append(q, v)
		}
		if len(q) != model.Dim() {
			return fmt.Errorf("knn: query has %d dims, model expects %d", len(q), model.Dim())
		}
	case *row >= 0:
		if *row >= model.N() {
			return fmt.Errorf("knn: row %d out of range [0,%d)", *row, model.N())
		}
		q = model.Point(*row)
	default:
		return fmt.Errorf("knn: provide -query or -row")
	}
	idx, err := model.NewIndex()
	if err != nil {
		return err
	}
	if *mjson {
		idx.SetRuntimeMetrics(procMetrics)
	}
	start := time.Now()
	var res []mmdr.Neighbor
	var tr *mmdr.KNNTrace
	switch {
	case *explain:
		if *quantized {
			return fmt.Errorf("knn: -explain traces the exact path; drop -quantized")
		}
		res, tr, err = idx.KNNTrace(q, *k)
		if err != nil {
			return err
		}
	case *quantized:
		res, err = idx.KNNQuantized(q, *k, *budget)
		if err != nil {
			return err
		}
	default:
		res = idx.KNN(q, *k)
	}
	elapsed := time.Since(start)
	if *quantized {
		fmt.Printf("%d-NN (quantized, budget %d) in %v:\n", *k, *budget, elapsed.Round(time.Microsecond))
	} else {
		fmt.Printf("%d-NN in %v:\n", *k, elapsed.Round(time.Microsecond))
	}
	for i, n := range res {
		fmt.Printf("  %2d. row %-8d dist %.6f\n", i+1, n.ID, n.Dist)
	}
	if tr != nil {
		fmt.Printf("explain: %d rounds, final radius %.4f, %d candidates, %d leaf pages\n",
			tr.Rounds, tr.FinalRadius, tr.Candidates, tr.LeavesScanned)
		for _, p := range tr.Partitions {
			kind := "subspace"
			if p.Outlier {
				kind = "outliers"
			}
			scanned := "not reached"
			if p.ScanLo <= p.ScanHi {
				scanned = fmt.Sprintf("annulus [%.4f, %.4f]", p.ScanLo, p.ScanHi)
			}
			fmt.Printf("  partition %d (%s, dim %d): dist-to-ref %.4f, %s, %d candidates, exhausted=%v\n",
				p.ID, kind, p.Dim, p.DistToRef, scanned, p.Candidates, p.Exhausted)
		}
	}
	if *mjson {
		snap := procMetrics.Snapshot()
		b, err := json.Marshal(&snap)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s\n", b)
	}
	return nil
}

// batchKNN answers one KNN query per listed dataset row in a single
// BatchKNN (or BatchKNNQuantized) call, which routes the whole workload
// through the fused blocked kernels (one partition scan per query tile).
// Answers are bit-identical to running each row through `knn -row`
// separately.
func batchKNN(model *mmdr.Model, rowsStr string, k int, quantized bool, budget int, mjson bool) error {
	fields := strings.Split(rowsStr, ",")
	queries := make([]float64, 0, len(fields)*model.Dim())
	rows := make([]int, 0, len(fields))
	for _, s := range fields {
		r, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("knn: parsing -rows: %w", err)
		}
		if r < 0 || r >= model.N() {
			return fmt.Errorf("knn: row %d out of range [0,%d)", r, model.N())
		}
		rows = append(rows, r)
		queries = append(queries, model.Point(r)...)
	}
	idx, err := model.NewIndex()
	if err != nil {
		return err
	}
	if mjson {
		idx.SetRuntimeMetrics(procMetrics)
	}
	start := time.Now()
	var res [][]mmdr.Neighbor
	if quantized {
		res, err = idx.BatchKNNQuantized(queries, k, budget)
	} else {
		res, err = idx.BatchKNN(queries, k)
	}
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	mode := ""
	if quantized {
		mode = fmt.Sprintf(" (quantized, budget %d)", budget)
	}
	fmt.Printf("%d-NN%s for %d queries in %v (%v/query):\n",
		k, mode, len(rows), elapsed.Round(time.Microsecond),
		(elapsed / time.Duration(len(rows))).Round(time.Microsecond))
	for qi, r := range rows {
		fmt.Printf("query row %d:\n", r)
		for i, n := range res[qi] {
			fmt.Printf("  %2d. row %-8d dist %.6f\n", i+1, n.ID, n.Dist)
		}
	}
	if mjson {
		snap := procMetrics.Snapshot()
		b, err := json.Marshal(&snap)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "%s\n", b)
	}
	return nil
}

func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	var (
		modelPath = fs.String("model", "", "model path (required)")
		k         = fs.Int("k", 10, "number of neighbors")
		nq        = fs.Int("queries", 100, "number of sampled queries")
		seed      = fs.Int64("seed", 1, "query sampling seed")
	)
	fs.Parse(args)
	if *modelPath == "" {
		return fmt.Errorf("eval: -model is required")
	}
	model, err := mmdr.LoadFile(*modelPath)
	if err != nil {
		return err
	}
	if *nq <= 0 || *nq > model.N() {
		return fmt.Errorf("eval: -queries must be in 1..%d", model.N())
	}
	rng := rand.New(rand.NewSource(*seed))
	queries := make([]float64, 0, *nq*model.Dim())
	for i := 0; i < *nq; i++ {
		queries = append(queries, model.Point(rng.Intn(model.N()))...)
	}
	start := time.Now()
	p, err := model.EvaluatePrecision(queries, *k)
	if err != nil {
		return err
	}
	fmt.Printf("mean %d-NN precision over %d queries: %.3f (%v)\n",
		*k, *nq, p, time.Since(start).Round(time.Millisecond))
	return nil
}
