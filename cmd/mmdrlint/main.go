// Command mmdrlint runs the repo's custom static-analysis suite — the
// analyzers in internal/analysis that mechanically enforce the
// determinism, hot-path, locking and persistence invariants (see
// DESIGN.md, "Enforced invariants").
//
// Two modes:
//
//	mmdrlint [-only a,b] [packages]   standalone driver; defaults to ./...
//	go vet -vettool=$(which mmdrlint) ./...
//
// -only restricts the standalone run to a comma-separated subset of the
// suite (e.g. `mmdrlint -only lockbal ./...`); //mmdr:ignore directives
// naming the skipped analyzers stay valid.
//
// The second form speaks `go vet`'s unit-checker protocol (-V=full, -flags,
// then one *.cfg per compilation unit), so mmdrlint slots into any workflow
// that already knows how to run vet tools. Findings print as
// file:line:col: analyzer: message. Exit status: 0 clean, 1 on findings or
// usage errors, 2 on internal errors.
//
// Suppress a finding with a justified directive on the line above it (or on
// the same line):
//
//	//mmdr:ignore <analyzer> <reason>
//
// Directives without a reason, or naming an unknown analyzer, are findings
// themselves.
package main

import (
	"fmt"
	"os"
	"strings"

	"mmdr/internal/analysis"
	"mmdr/internal/analysis/framework"
	"mmdr/internal/analysis/load"
)

func main() {
	args := os.Args[1:]

	// `go vet` probes the tool before handing it compilation units.
	if len(args) == 1 {
		switch {
		case args[0] == "-V=full":
			printVersion()
			return
		case args[0] == "-flags":
			fmt.Println("[]") // no tool-specific flags
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(unitRun(args[0]))
		}
	}

	var only []string
	var patterns []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		switch {
		case a == "-h" || a == "-help" || a == "--help" || a == "help":
			usage()
			return
		case a == "-only":
			if i+1 >= len(args) {
				fmt.Fprintln(os.Stderr, "mmdrlint: -only needs a comma-separated analyzer list")
				os.Exit(1)
			}
			i++
			only = append(only, strings.Split(args[i], ",")...)
		case strings.HasPrefix(a, "-only="):
			only = append(only, strings.Split(strings.TrimPrefix(a, "-only="), ",")...)
		default:
			patterns = append(patterns, a)
		}
	}
	suite, unknown := analysis.Select(only)
	if len(unknown) > 0 {
		fmt.Fprintf(os.Stderr, "mmdrlint: -only names unknown analyzer(s) %s; known: %s\n",
			strings.Join(unknown, ", "), strings.Join(analysis.Names(), ", "))
		os.Exit(1)
	}
	os.Exit(driverRun(suite, patterns))
}

func usage() {
	fmt.Println("mmdrlint [-only a,b] [packages] — default ./...\n\nAnalyzers:")
	for _, a := range analysis.All() {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Println("\nSuppression: //mmdr:ignore <analyzer> <reason> on or above the flagged line.")
	fmt.Println("Run one analyzer: mmdrlint -only lockbal ./...")
}

// driverRun loads the requested packages through the module-aware loader
// and analyzes each with the given analyzers (the full suite, or the
// -only subset; Known keeps directives for the skipped analyzers valid).
func driverRun(suite []*framework.Analyzer, patterns []string) int {
	loader, err := load.New(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	pkgs, err := loader.Packages()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		runner := &framework.Runner{Analyzers: suite, Known: analysis.Names()}
		diags, err := runner.Run(pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmdrlint: %s: %v\n", pkg.PkgPath, err)
			return 2
		}
		findings += printDiags(diags)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "mmdrlint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}

// printDiags writes diagnostics (skipping test files — the invariants
// govern production code; tests assert them dynamically) and returns how
// many were printed.
func printDiags(diags []framework.Diagnostic) int {
	n := 0
	for _, d := range diags {
		if strings.HasSuffix(d.Pos.Filename, "_test.go") {
			continue
		}
		fmt.Fprintln(os.Stderr, d.String())
		n++
	}
	return n
}
