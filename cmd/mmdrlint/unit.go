package main

// go vet's unit-checker protocol, stdlib-only. `go vet -vettool=mmdrlint`
// invokes the tool once per compilation unit with a JSON config file
// describing the unit: its Go files, the import map, and an export-data
// file per dependency (compiled by the go command). This file re-implements
// the slice of golang.org/x/tools/go/analysis/unitchecker the suite needs:
// parse the unit, type-check against the provided export data, run the
// analyzers, write the (empty — no facts) .vetx output, print findings.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"mmdr/internal/analysis"
	"mmdr/internal/analysis/framework"
)

// vetConfig mirrors the fields of the go command's vet.cfg the checker
// consumes (the file carries more; unknown fields are ignored).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitRun analyzes one compilation unit described by cfgPath.
func unitRun(cfgPath string) (exit int) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "mmdrlint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "mmdrlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}

	// The go command caches on the .vetx facts file; write it even when the
	// unit fails to type-check so the cache entry is complete.
	writeVetx := func() {
		if cfg.VetxOutput == "" {
			return
		}
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "mmdrlint: writing %s: %v\n", cfg.VetxOutput, err)
			exit = 2
		}
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				writeVetx()
				return exit
			}
			fmt.Fprintf(os.Stderr, "mmdrlint: %v\n", err)
			return 2
		}
		files = append(files, f)
	}

	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("mmdrlint: no package file for %q", path)
		}
		return os.Open(file)
	})
	tconf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		tconf.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return exit
		}
		fmt.Fprintf(os.Stderr, "mmdrlint: type-checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}

	findings := 0
	if !cfg.VetxOnly {
		runner := &framework.Runner{Analyzers: analysis.All(), Known: analysis.Names()}
		diags, err := runner.Run(fset, files, pkg, info)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mmdrlint: %s: %v\n", cfg.ImportPath, err)
			return 2
		}
		findings = printDiags(diags)
	}

	writeVetx()
	if exit == 0 && findings > 0 {
		exit = 2 // unit-checker convention: diagnostics exit 2
	}
	return exit
}

// printVersion implements -V=full in the exact shape the go command's
// content-based tool caching expects: name, version, and a content hash of
// the executable.
func printVersion() {
	name := "mmdrlint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		name = filepath.Base(exe)
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}
