package main_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// buildTool compiles mmdrlint into a temp dir and returns the binary path.
func buildTool(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "mmdrlint")
	if runtime.GOOS == "windows" {
		bin += ".exe"
	}
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building mmdrlint: %v\n%s", err, out)
	}
	return bin
}

// writeModule lays out a self-contained module with one global-rand
// violation, one justified suppression, and one clean seeded use.
func writeModule(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"p.go": `package p

import "math/rand"

func Bad() int { return rand.Intn(10) }

func Justified() float64 {
	//mmdr:ignore seededrand deterministic seed irrelevant in this doc example
	return rand.Float64()
}

func Good(rng *rand.Rand) int { return rng.Intn(10) }
`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// run executes bin with args in dir, returning combined output and exit code.
func run(t *testing.T, dir, bin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running %s %v: %v\n%s", bin, args, err, out)
	}
	return string(out), ee.ExitCode()
}

// TestDriverMode runs the standalone driver over a module with a known
// violation: the finding must print and the exit code must be 1, and the
// justified suppression must hold.
func TestDriverMode(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t)

	out, code := run(t, dir, bin, "./...")
	if code != 1 {
		t.Fatalf("driver exit = %d, want 1\n%s", code, out)
	}
	if !strings.Contains(out, "seededrand: rand.Intn uses the global math/rand source") {
		t.Errorf("missing rand.Intn finding in:\n%s", out)
	}
	if strings.Contains(out, "rand.Float64") {
		t.Errorf("justified suppression did not hold:\n%s", out)
	}
	if strings.Contains(out, "rng.Intn") {
		t.Errorf("seeded *rand.Rand use was flagged:\n%s", out)
	}
}

// TestVetToolMode drives the same module through `go vet -vettool=...`,
// exercising the unit-checker protocol end to end (probe handshake, .cfg
// units, .vetx outputs, finding exit status).
func TestVetToolMode(t *testing.T) {
	bin := buildTool(t)
	dir := writeModule(t)

	out, code := run(t, dir, "go", "vet", "-vettool="+bin, "./...")
	if code == 0 {
		t.Fatalf("go vet -vettool exit = 0, want nonzero\n%s", out)
	}
	if !strings.Contains(out, "seededrand: rand.Intn uses the global math/rand source") {
		t.Errorf("missing rand.Intn finding in:\n%s", out)
	}
	if strings.Contains(out, "rand.Float64") {
		t.Errorf("justified suppression did not hold under vet:\n%s", out)
	}
}

// TestDriverClean verifies exit 0 and no output on a module without
// violations.
func TestDriverClean(t *testing.T) {
	bin := buildTool(t)
	dir := t.TempDir()
	for name, src := range map[string]string{
		"go.mod": "module tmpmod\n\ngo 1.22\n",
		"p.go":   "package p\n\nfunc Add(a, b int) int { return a + b }\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	out, code := run(t, dir, bin, "./...")
	if code != 0 || strings.TrimSpace(out) != "" {
		t.Fatalf("clean module: exit %d, output %q", code, out)
	}
}
