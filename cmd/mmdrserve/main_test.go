package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/serve"
	"mmdr/internal/verify"
)

// startServe runs the CLI in-process against a synthetic model on an
// ephemeral port and returns the bound address plus a stop function that
// delivers the shutdown signal and waits for a clean exit.
func startServe(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	args := append([]string{
		"-synthetic", "-n", "500", "-dim", "16", "-addr", "127.0.0.1:0", "-shards", "2",
	}, extra...)
	ready := make(chan string, 1)
	done := make(chan int, 1)
	var stdout, stderr bytes.Buffer
	go func() { done <- run(args, &stdout, &stderr, ready) }()
	var addr string
	select {
	case addr = <-ready:
	case <-time.After(30 * time.Second):
		t.Fatalf("server never became ready\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
	}
	return addr, func() {
		t.Helper()
		// The CLI installed its handler via signal.Notify; raising the
		// signal exercises the real shutdown path.
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		select {
		case code := <-done:
			if code != 0 {
				t.Errorf("exit code %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
			}
		case <-time.After(30 * time.Second):
			t.Fatalf("server never drained\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
		}
		if !strings.Contains(stdout.String(), "drained") {
			t.Errorf("missing drain message in output: %s", stdout.String())
		}
	}
}

func TestServeCLISyntheticLifecycle(t *testing.T) {
	// Warm the runtime's signal-watcher goroutine (a process-lifetime
	// singleton the first signal.Notify starts) so the leak baseline
	// already contains it.
	warm := make(chan os.Signal, 1)
	signal.Notify(warm, syscall.SIGUSR1)
	signal.Stop(warm)

	checkLeaks := verify.Leak(t)
	addr, stop := startServe(t)
	base := "http://" + addr

	resp, err := http.Get(base + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Shards != 2 || st.Points != 500 || st.Dim != 16 {
		t.Errorf("statusz %+v", st)
	}

	body, _ := json.Marshal(serve.KNNRequest{Q: make([]float64, 16), K: 3})
	resp, err = http.Post(base+"/knn", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var nbs serve.NeighborsResponse
	if err := json.NewDecoder(resp.Body).Decode(&nbs); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(nbs.Neighbors) != 3 {
		t.Errorf("knn status %d, %d neighbors", resp.StatusCode, len(nbs.Neighbors))
	}

	stop()
	http.DefaultClient.CloseIdleConnections()
	checkLeaks()
}

func TestServeCLIModelFile(t *testing.T) {
	cfg := datagen.CorrelatedConfig{N: 400, Dim: 16, NumClusters: 3, SDim: 3,
		VarRatio: 50, ScaleDecay: 0.75, Seed: 9}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	model, err := mmdr.ReduceDataset(datagen.Normalize(ds), mmdr.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "m.mmdr")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var stdout, stderr bytes.Buffer
	ready := make(chan string, 1)
	done := make(chan int, 1)
	go func() {
		done <- run([]string{"-model", path, "-addr", "127.0.0.1:0"}, &stdout, &stderr, ready)
	}()
	select {
	case addr := <-ready:
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("healthz status %d", resp.StatusCode)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("server never became ready\nstderr: %s", stderr.String())
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if code := <-done; code != 0 {
		t.Errorf("exit code %d\nstderr: %s", code, stderr.String())
	}
	http.DefaultClient.CloseIdleConnections()
}

func TestServeCLIBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{}, &stdout, &stderr, nil); code != 1 {
		t.Errorf("no model source: exit %d, want 1", code)
	}
	if code := run([]string{"-model", "x", "-synthetic"}, &stdout, &stderr, nil); code != 1 {
		t.Errorf("conflicting sources: exit %d, want 1", code)
	}
}
