// Command mmdrserve runs the sharded query server over a reduced model.
//
// Usage:
//
//	mmdrserve -model model.mmdr -addr :8080 -shards 4
//	mmdrserve -synthetic -n 100000 -dim 64 -addr 127.0.0.1:0
//
// The server loads a model (mmdr.Save format) or, with -synthetic,
// reduces a generated correlated-cluster dataset at startup. It serves
// the HTTP API (POST /knn /range /insert /delete /reload, GET /healthz
// /statusz /metrics, /debug/pprof/*) until SIGINT/SIGTERM, then drains:
// in-flight requests finish, workers exit, and the process leaves no
// goroutines behind — the contract `make racegate` verifies.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/metrics"
	"mmdr/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run contains the CLI logic; separated from main so tests can exercise
// it. A non-nil ready channel receives the bound address once the server
// is listening, and the run exits when stop (the signal channel) fires.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("mmdrserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (host:port, :0 for ephemeral)")
		modelPath = fs.String("model", "", "model file to serve (mmdr.Save format)")
		synthetic = fs.Bool("synthetic", false, "reduce a synthetic correlated-cluster dataset instead of loading -model")
		n         = fs.Int("n", 20000, "synthetic dataset size")
		dim       = fs.Int("dim", 64, "synthetic dataset dimensionality")
		seed      = fs.Int64("seed", 1, "synthetic dataset seed")
		shards    = fs.Int("shards", 1, "index replicas, one worker goroutine each")
		queue     = fs.Int("queue", serve.DefaultQueueDepth, "admission queue depth per shard (full queues answer 429)")
		batch     = fs.Int("batch", serve.DefaultMaxBatch, "coalescing tile: flush to the fused engine at this many requests")
		flush     = fs.Duration("flush", serve.DefaultFlushDelay, "micro-batch linger before a partial tile flushes")
		workers   = fs.Int("workers", 1, "intra-shard parallelism of one flushed batch")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	model, err := loadModel(*modelPath, *synthetic, *n, *dim, *seed, stderr)
	if err != nil {
		fmt.Fprintf(stderr, "mmdrserve: %v\n", err)
		return 1
	}

	reg := metrics.NewRegistry()
	srv, err := serve.New(model, serve.Options{
		Shards:     *shards,
		QueueDepth: *queue,
		MaxBatch:   *batch,
		FlushDelay: *flush,
		Workers:    *workers,
		Metrics:    reg,
	})
	if err != nil {
		fmt.Fprintf(stderr, "mmdrserve: %v\n", err)
		return 1
	}
	bound, err := srv.Start(*addr)
	if err != nil {
		srv.Close() //nolint:errcheck — already failing
		fmt.Fprintf(stderr, "mmdrserve: %v\n", err)
		return 1
	}
	st := srv.Stats()
	fmt.Fprintf(stdout, "mmdrserve: serving %d points (dim %d) on http://%s — shards=%d queue=%d batch=%d flush=%v\n",
		st.Points, st.Dim, bound, st.Shards, st.QueueDepth, st.MaxBatch, time.Duration(st.FlushUS)*time.Microsecond)
	if ready != nil {
		ready <- bound.String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(sig)
	s := <-sig
	fmt.Fprintf(stdout, "mmdrserve: %v — draining\n", s)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(stderr, "mmdrserve: close: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "mmdrserve: drained, bye")
	return 0
}

// loadModel reads a saved model or reduces a synthetic dataset.
func loadModel(path string, synthetic bool, n, dim int, seed int64, stderr io.Writer) (*mmdr.Model, error) {
	switch {
	case path != "" && synthetic:
		return nil, fmt.Errorf("-model and -synthetic are mutually exclusive")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return mmdr.Load(f)
	case synthetic:
		cfg := datagen.CorrelatedConfig{N: n, Dim: dim, NumClusters: 5, SDim: 3,
			VarRatio: 25, ScaleDecay: 0.75, Seed: seed}
		ds, _, err := cfg.Generate()
		if err != nil {
			return nil, err
		}
		ds = datagen.Normalize(ds)
		start := time.Now()
		model, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(seed))
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stderr, "mmdrserve: reduced synthetic n=%d d=%d in %v\n", n, dim, time.Since(start).Round(time.Millisecond))
		return model, nil
	default:
		return nil, fmt.Errorf("need -model <file> or -synthetic")
	}
}
