// Command mmdrbench regenerates the tables and figures of the paper's
// evaluation section (ICDE 2003, §6).
//
// Usage:
//
//	mmdrbench -list
//	mmdrbench -experiment fig7a [-scale small|medium|paper] [-seed N]
//	mmdrbench -experiment all -scale medium
//	mmdrbench -experiment fig7a -trace            # phase tree on stderr
//	mmdrbench -experiment fig9a -metrics-json     # cost counters + latency metrics as JSON
//	mmdrbench -experiment all -pprof localhost:0  # pprof + expvar + /metrics server
//	mmdrbench -bench-obs BENCH_obs.json           # metrics-overhead benchmark report
//	mmdrbench -bench-approx BENCH_approx.json     # quantized-scan recall/QPS frontier
//	mmdrbench -bench-serve BENCH_serve.json       # HTTP serving latency/QPS sweep
//	mmdrbench -scale small -check-baseline        # diff a fresh smoke run vs committed BENCH_*.json
//
// Scales trade fidelity for runtime: "paper" approaches the published
// dataset sizes (100k-1M points) and can take a long time on one core;
// "medium" (default) preserves every qualitative shape; "small" is for
// smoke runs. See EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mmdr/internal/experiments"
	"mmdr/internal/iostat"
	"mmdr/internal/metrics"
	"mmdr/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// procCounter aggregates logical costs across every experiment of the
// process; the expvar endpoint reads it live while experiments run.
var procCounter iostat.AtomicCounter

// procMetrics is the process-wide runtime-metrics registry: build phases and
// query operations record into it, and both the /metrics exposition and the
// expvar endpoint read it live.
var procMetrics = metrics.NewRegistry()

func init() {
	obs.Publish("mmdr.costs", func() any { return procCounter.Snapshot() })
	obs.Publish("mmdr.metrics", func() any { return procMetrics.Snapshot() })
	procMetrics.SetCostSource(procCounter.Snapshot)
}

// run contains the CLI logic; separated from main so tests can exercise it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmdrbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("experiment", "", "experiment to run (see -list), or \"all\"")
		scale   = fs.String("scale", "medium", "dataset scale: small, medium or paper")
		seed    = fs.Int64("seed", 1, "random seed")
		k       = fs.Int("k", 10, "KNN size")
		queries = fs.Int("queries", 0, "number of queries (0 = scale default)")
		list    = fs.Bool("list", false, "list available experiments")
		format  = fs.String("format", "table", "output format: table or csv")
		trace   = fs.Bool("trace", false, "print the pipeline phase tree per experiment (stderr)")
		mjson   = fs.Bool("metrics-json", false, "print per-experiment cost counters as JSON (stderr)")
		pprof   = fs.String("pprof", "", "serve net/http/pprof and expvar on this address (e.g. localhost:6060)")

		parallel    = fs.Int("parallel", 0, "worker goroutines for reduction builds (0 = all cores, 1 = serial)")
		benchPar    = fs.String("bench-parallel", "", "run the parallelism benchmark (build speedup, fused-batch throughput, worker sweep) and write its JSON report to this file")
		benchQuery  = fs.String("bench-query", "", "run the query-kernel benchmark and write its JSON report to this file")
		benchObs    = fs.String("bench-obs", "", "run the observability-overhead benchmark and write its JSON report to this file")
		benchApprox = fs.String("bench-approx", "", "run the quantized-scan recall/QPS frontier benchmark and write its JSON report to this file")
		benchServe  = fs.String("bench-serve", "", "run the HTTP serving benchmark (shard x concurrency sweep with a bitwise correctness gate) and write its JSON report to this file")

		checkBaseline = fs.Bool("check-baseline", false, "run fresh query/approx benchmarks at the configured scale and diff the scale-portable fields against the committed BENCH_*.json (see -baseline-dir); exits 1 on regression")
		baselineDir   = fs.String("baseline-dir", ".", "directory holding the committed BENCH_*.json baselines for -check-baseline")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, n := range experiments.Names() {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
		return 0
	}
	if *exp == "" && *benchPar == "" && *benchQuery == "" && *benchObs == "" && *benchApprox == "" && *benchServe == "" && !*checkBaseline {
		fs.Usage()
		return 2
	}

	if *pprof != "" {
		srv, err := obs.StartDebugServer(*pprof, obs.Route{Path: "/metrics", Handler: metrics.Handler(procMetrics)})
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: pprof server: %v\n", err)
			return 1
		}
		defer srv.Close()
		fmt.Fprintf(stderr, "pprof/expvar/metrics listening on http://%s/debug/pprof/\n", srv.Addr())
	}

	cfg := experiments.Config{
		Scale:       experiments.Scale(*scale),
		Seed:        *seed,
		K:           *k,
		NumQueries:  *queries,
		Parallelism: *parallel,
		Counter:     &procCounter,
		Metrics:     procMetrics,
	}
	switch cfg.Scale {
	case experiments.Small, experiments.Medium, experiments.Paper:
	default:
		fmt.Fprintf(stderr, "mmdrbench: unknown scale %q\n", *scale)
		return 2
	}

	if *checkBaseline {
		regressions, err := experiments.CheckBaseline(cfg, *baselineDir, stdout)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: baseline check: %v\n", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(stderr, "mmdrbench: %d baseline regression(s)\n", regressions)
			return 1
		}
		if *exp == "" && *benchPar == "" && *benchQuery == "" && *benchObs == "" && *benchApprox == "" && *benchServe == "" {
			return 0
		}
	}

	if *benchPar != "" {
		rep, err := experiments.ParallelBench(cfg, *parallel)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: parallel benchmark: %v\n", err)
			return 1
		}
		f, err := os.Create(*benchPar)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", werr)
			return 1
		}
		rep.Table().Fprint(stdout)
		if *exp == "" && *benchQuery == "" && *benchObs == "" && *benchApprox == "" && *benchServe == "" {
			return 0
		}
	}

	if *benchQuery != "" {
		rep, err := experiments.QueryBench(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: query benchmark: %v\n", err)
			return 1
		}
		f, err := os.Create(*benchQuery)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", werr)
			return 1
		}
		rep.Table().Fprint(stdout)
		if *exp == "" && *benchObs == "" && *benchApprox == "" && *benchServe == "" {
			return 0
		}
	}

	if *benchObs != "" {
		rep, err := experiments.ObsBench(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: observability benchmark: %v\n", err)
			return 1
		}
		f, err := os.Create(*benchObs)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", werr)
			return 1
		}
		rep.Table().Fprint(stdout)
		if *exp == "" && *benchApprox == "" && *benchServe == "" {
			return 0
		}
	}

	if *benchApprox != "" {
		rep, err := experiments.ApproxBench(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: approx benchmark: %v\n", err)
			return 1
		}
		f, err := os.Create(*benchApprox)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", werr)
			return 1
		}
		rep.Table().Fprint(stdout)
		if *exp == "" && *benchServe == "" {
			return 0
		}
	}

	if *benchServe != "" {
		rep, err := experiments.ServeBench(cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: serving benchmark: %v\n", err)
			return 1
		}
		f, err := os.Create(*benchServe)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", err)
			return 1
		}
		werr := rep.WriteJSON(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintf(stderr, "mmdrbench: %v\n", werr)
			return 1
		}
		rep.Table().Fprint(stdout)
		if *exp == "" {
			return 0
		}
	}

	names := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		names = experiments.Names()
	}
	var before iostat.Counter
	for _, name := range names {
		var collector *obs.Collector
		cfg.Tracer = nil
		if *trace {
			collector = obs.NewCollector()
			cfg.Tracer = collector
		}
		start := time.Now()
		tb, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
			return 1
		}
		elapsed := time.Since(start)
		if *format == "csv" {
			if err := tb.WriteCSV(stdout); err != nil {
				fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
				return 1
			}
		} else {
			tb.Fprint(stdout)
		}
		// Per-experiment counter delta: the process counter only grows, so
		// the difference against the previous snapshot is this experiment.
		after := procCounter.Snapshot()
		delta := after
		delta.PageReads -= before.PageReads
		delta.PageWrites -= before.PageWrites
		delta.DistanceOps -= before.DistanceOps
		delta.KeyCompares -= before.KeyCompares
		delta.FloatOps -= before.FloatOps
		delta.NodeAccesses -= before.NodeAccesses
		before = after
		fmt.Fprintf(stderr, "(%s in %v; %s)\n", name, elapsed.Round(time.Millisecond), delta.String())
		if collector != nil {
			fmt.Fprintf(stderr, "phase tree for %s:\n", name)
			if err := collector.WriteTree(stderr); err != nil {
				fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
				return 1
			}
		}
		if *mjson {
			b, err := json.Marshal(&delta)
			if err != nil {
				fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
				return 1
			}
			// The runtime-metrics snapshot is cumulative across the whole
			// process (latency histograms don't subtract), unlike the
			// per-experiment cost delta.
			snap := procMetrics.Snapshot()
			mb, err := json.Marshal(&snap)
			if err != nil {
				fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
				return 1
			}
			fmt.Fprintf(stderr, "{\"experiment\":%q,\"elapsed_ms\":%d,\"costs\":%s,\"runtime_metrics\":%s}\n",
				name, elapsed.Milliseconds(), b, mb)
		}
	}
	return 0
}
