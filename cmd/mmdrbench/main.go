// Command mmdrbench regenerates the tables and figures of the paper's
// evaluation section (ICDE 2003, §6).
//
// Usage:
//
//	mmdrbench -list
//	mmdrbench -experiment fig7a [-scale small|medium|paper] [-seed N]
//	mmdrbench -experiment all -scale medium
//
// Scales trade fidelity for runtime: "paper" approaches the published
// dataset sizes (100k-1M points) and can take a long time on one core;
// "medium" (default) preserves every qualitative shape; "small" is for
// smoke runs. See EXPERIMENTS.md for paper-vs-measured notes.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"mmdr/internal/experiments"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run contains the CLI logic; separated from main so tests can exercise it.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmdrbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp     = fs.String("experiment", "", "experiment to run (see -list), or \"all\"")
		scale   = fs.String("scale", "medium", "dataset scale: small, medium or paper")
		seed    = fs.Int64("seed", 1, "random seed")
		k       = fs.Int("k", 10, "KNN size")
		queries = fs.Int("queries", 0, "number of queries (0 = scale default)")
		list    = fs.Bool("list", false, "list available experiments")
		format  = fs.String("format", "table", "output format: table or csv")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "available experiments:")
		for _, n := range experiments.Names() {
			fmt.Fprintf(stdout, "  %s\n", n)
		}
		return 0
	}
	if *exp == "" {
		fs.Usage()
		return 2
	}

	cfg := experiments.Config{
		Scale:      experiments.Scale(*scale),
		Seed:       *seed,
		K:          *k,
		NumQueries: *queries,
	}
	switch cfg.Scale {
	case experiments.Small, experiments.Medium, experiments.Paper:
	default:
		fmt.Fprintf(stderr, "mmdrbench: unknown scale %q\n", *scale)
		return 2
	}

	names := []string{*exp}
	if strings.EqualFold(*exp, "all") {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		tb, err := experiments.Run(name, cfg)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
			return 1
		}
		if *format == "csv" {
			if err := tb.WriteCSV(stdout); err != nil {
				fmt.Fprintf(stderr, "mmdrbench: %s: %v\n", name, err)
				return 1
			}
		} else {
			tb.Fprint(stdout)
		}
		fmt.Fprintf(stderr, "(%s in %v)\n", name, time.Since(start).Round(time.Millisecond))
	}
	return 0
}
