package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"fig7a", "fig11b", "ablation-lookup", "ext-raw"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunExperimentTableAndCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "ablation-normalized", "-scale", "small"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "normalized") {
		t.Fatalf("table output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-experiment", "ablation-normalized", "-scale", "small", "-format", "csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "variant,") {
		t.Fatalf("csv output:\n%s", out.String())
	}
}

func TestRunBenchObs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_obs.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench-obs", path, "-scale", "small", "-queries", "10"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "runtime metrics overhead") {
		t.Fatalf("table output:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Env struct {
			GoVersion string `json:"go_version"`
		} `json:"env"`
		OffNsPerQuery float64 `json:"off_ns_per_query"`
		Metrics       struct {
			Ops []struct {
				Name  string `json:"name"`
				Count int64  `json:"count"`
			} `json:"ops"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Env.GoVersion == "" || rep.OffNsPerQuery <= 0 {
		t.Fatalf("report missing env or timings: %s", b)
	}
	var knn bool
	for _, o := range rep.Metrics.Ops {
		if o.Name == "knn" && o.Count > 0 {
			knn = true
		}
	}
	if !knn {
		t.Fatalf("report snapshot missing knn op: %s", b)
	}
}

func TestRunBenchApprox(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_approx.json")
	var out, errOut bytes.Buffer
	if code := run([]string{"-bench-approx", path, "-scale", "small", "-queries", "10"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "quantized scan frontier") {
		t.Fatalf("table output:\n%s", out.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Env struct {
			GoVersion string `json:"go_version"`
		} `json:"env"`
		FullBudgetBitIdentical bool `json:"full_budget_bit_identical"`
		Frontier               []struct {
			Recall float64 `json:"recall"`
			QPS    float64 `json:"qps"`
		} `json:"frontier"`
	}
	if err := json.Unmarshal(b, &rep); err != nil {
		t.Fatalf("report is not JSON: %v", err)
	}
	if rep.Env.GoVersion == "" || !rep.FullBudgetBitIdentical || len(rep.Frontier) < 9 {
		t.Fatalf("report incomplete: %s", b)
	}
}

func TestRunMetricsJSON(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "ablation-normalized", "-scale", "small", "-metrics-json"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var line string
	for _, l := range strings.Split(errOut.String(), "\n") {
		if strings.HasPrefix(l, "{") {
			line = l
		}
	}
	if line == "" {
		t.Fatalf("no JSON line on stderr:\n%s", errOut.String())
	}
	var payload struct {
		Experiment     string          `json:"experiment"`
		Costs          json.RawMessage `json:"costs"`
		RuntimeMetrics json.RawMessage `json:"runtime_metrics"`
	}
	if err := json.Unmarshal([]byte(line), &payload); err != nil {
		t.Fatalf("stderr line is not JSON: %v\n%s", err, line)
	}
	if payload.Experiment != "ablation-normalized" || len(payload.Costs) == 0 || len(payload.RuntimeMetrics) == 0 {
		t.Fatalf("payload incomplete: %s", line)
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing -experiment should exit 2, got %d", code)
	}
	if code := run([]string{"-experiment", "nope"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown experiment should exit 1, got %d", code)
	}
	if code := run([]string{"-experiment", "fig7a", "-scale", "galactic"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scale should exit 2, got %d", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag should exit 2, got %d", code)
	}
}
