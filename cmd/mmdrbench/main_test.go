package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"fig7a", "fig11b", "ablation-lookup", "ext-raw"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunExperimentTableAndCSV(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run([]string{"-experiment", "ablation-normalized", "-scale", "small"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "normalized") {
		t.Fatalf("table output:\n%s", out.String())
	}
	out.Reset()
	if code := run([]string{"-experiment", "ablation-normalized", "-scale", "small", "-format", "csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.HasPrefix(out.String(), "variant,") {
		t.Fatalf("csv output:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("missing -experiment should exit 2, got %d", code)
	}
	if code := run([]string{"-experiment", "nope"}, &out, &errOut); code != 1 {
		t.Fatalf("unknown experiment should exit 1, got %d", code)
	}
	if code := run([]string{"-experiment", "fig7a", "-scale", "galactic"}, &out, &errOut); code != 2 {
		t.Fatalf("unknown scale should exit 2, got %d", code)
	}
	if code := run([]string{"-bogusflag"}, &out, &errOut); code != 2 {
		t.Fatalf("bad flag should exit 2, got %d", code)
	}
}
