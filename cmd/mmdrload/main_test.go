package main

import (
	"bytes"
	"encoding/json"
	"testing"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/serve"
)

func startServer(t *testing.T) string {
	t.Helper()
	cfg := datagen.CorrelatedConfig{N: 500, Dim: 16, NumClusters: 3, SDim: 3,
		VarRatio: 50, ScaleDecay: 0.75, Seed: 13}
	ds, _, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	model, err := mmdr.ReduceDataset(datagen.Normalize(ds), mmdr.WithSeed(13))
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(model, serve.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() }) //nolint:errcheck — test teardown
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return addr.String()
}

func TestLoadSweep(t *testing.T) {
	addr := startServer(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-addr", addr, "-k", "3", "-requests", "200",
		"-concurrency", "1,4", "-queries", "32", "-out", "-",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	// The table precedes the JSON; decode from the first '{'.
	out := stdout.String()
	idx := bytes.IndexByte([]byte(out), '{')
	if idx < 0 {
		t.Fatalf("no JSON in output:\n%s", out)
	}
	var rep loadReport
	if err := json.Unmarshal([]byte(out[idx:]), &rep); err != nil {
		t.Fatalf("decoding report: %v\noutput:\n%s", err, out)
	}
	if rep.Dim != 16 || len(rep.Levels) != 2 {
		t.Fatalf("report %+v", rep)
	}
	for _, lv := range rep.Levels {
		if lv.QPS <= 0 || lv.P99US < lv.P50US || lv.Requests != 200 {
			t.Errorf("implausible level %+v", lv)
		}
	}
}

func TestLoadBadArgs(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-concurrency", "4,1"}, &stdout, &stderr); code != 2 {
		t.Errorf("descending levels: exit %d, want 2", code)
	}
	if code := run([]string{"-concurrency", "zero"}, &stdout, &stderr); code != 2 {
		t.Errorf("non-numeric levels: exit %d, want 2", code)
	}
	// No server on a port nobody listens on: clean failure, not a hang.
	if code := run([]string{"-addr", "127.0.0.1:1", "-requests", "10"}, &stdout, &stderr); code != 1 {
		t.Errorf("unreachable server: exit %d, want 1", code)
	}
}
