// Command mmdrload is the HTTP load generator for mmdrserve: it sweeps
// client concurrency levels against a running server and reports
// client-observed p50/p99 latency and QPS per level.
//
// Usage:
//
//	mmdrload -addr 127.0.0.1:8080 -k 10 -requests 2000 -concurrency 1,4,16,64
//	mmdrload -addr 127.0.0.1:8080 -out load.json
//
// Query vectors are sampled uniformly from [0,1)^dim (the server's
// /statusz reports dim), seeded for reproducibility. The in-repo
// benchmark pipeline (mmdrbench -bench-serve) additionally verifies
// served answers bitwise against the direct engine; mmdrload is the
// external-process view of the same serving path.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strconv"
	"strings"

	"mmdr/internal/experiments"
	"mmdr/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// loadReport is the -out JSON shape: one row per concurrency level plus
// the environment stamp the BENCH_*.json reports share.
type loadReport struct {
	Env    experiments.EnvInfo `json:"env"`
	Addr   string              `json:"addr"`
	Dim    int                 `json:"dim"`
	K      int                 `json:"k"`
	Levels []loadLevel         `json:"levels"`
}

type loadLevel struct {
	Concurrency int `json:"concurrency"`
	experiments.LoadResult
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mmdrload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "server address (host:port)")
		k        = fs.Int("k", 10, "KNN size per request")
		requests = fs.Int("requests", 2000, "requests per concurrency level")
		conc     = fs.String("concurrency", "1,4,16,64", "comma-separated client concurrency levels")
		queries  = fs.Int("queries", 256, "distinct query vectors to cycle through")
		seed     = fs.Int64("seed", 1, "query-vector seed")
		out      = fs.String("out", "", "write the sweep as JSON to this file (\"-\" for stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	levels, err := parseLevels(*conc)
	if err != nil {
		fmt.Fprintf(stderr, "mmdrload: %v\n", err)
		return 2
	}

	base := "http://" + *addr
	maxConc := levels[len(levels)-1]
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        maxConc + 4,
		MaxIdleConnsPerHost: maxConc + 4,
	}}
	defer client.Transport.(*http.Transport).CloseIdleConnections()

	st, err := fetchStatus(client, base)
	if err != nil {
		fmt.Fprintf(stderr, "mmdrload: %v (is mmdrserve running on %s?)\n", err, *addr)
		return 1
	}
	if st.Dim <= 0 {
		fmt.Fprintf(stderr, "mmdrload: server reports dim %d\n", st.Dim)
		return 1
	}

	rng := rand.New(rand.NewSource(*seed))
	qs := make([][]float64, *queries)
	for i := range qs {
		q := make([]float64, st.Dim)
		for j := range q {
			q[j] = rng.Float64()
		}
		qs[i] = q
	}

	rep := loadReport{Env: experiments.CollectEnv(), Addr: *addr, Dim: st.Dim, K: *k}
	fmt.Fprintf(stdout, "%-12s %-10s %-10s %-10s %-10s %-10s\n",
		"concurrency", "qps", "p50 µs", "p99 µs", "mean µs", "rejected")
	for _, c := range levels {
		res, err := experiments.HTTPLoad(client, base, qs, *k, c, *requests)
		if err != nil {
			fmt.Fprintf(stderr, "mmdrload: concurrency %d: %v\n", c, err)
			return 1
		}
		rep.Levels = append(rep.Levels, loadLevel{Concurrency: c, LoadResult: res})
		fmt.Fprintf(stdout, "%-12d %-10.0f %-10.1f %-10.1f %-10.1f %-10d\n",
			c, res.QPS, res.P50US, res.P99US, res.MeanUS, res.Rejected)
	}

	if *out != "" {
		w := stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintf(stderr, "mmdrload: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(stderr, "mmdrload: %v\n", err)
			return 1
		}
	}
	return 0
}

// parseLevels parses "1,4,16" into ascending concurrency levels.
func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad concurrency level %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no concurrency levels")
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			return nil, fmt.Errorf("concurrency levels must be ascending")
		}
	}
	return out, nil
}

// fetchStatus reads the server's /statusz.
func fetchStatus(client *http.Client, base string) (serve.Status, error) {
	var st serve.Status
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("/statusz status %d", resp.StatusCode)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
