// Anomaly: using the MMDR model as an anomaly detector. Points that no
// discovered local correlation structure explains — large distance to every
// subspace — are exactly what the reduction's β threshold calls outliers;
// Model.AnomalyScore exposes the same criterion as a continuous score for
// new observations. The example also shows the model acting as a lossy
// compressor (reduced coordinates reconstruct the original points).
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"sort"

	"mmdr"
	"mmdr/internal/datagen"
)

func main() {
	const dim = 24

	// Normal traffic: 4 locally correlated clusters.
	cfg := datagen.CorrelatedConfig{
		N: 6000, Dim: dim, NumClusters: 4, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.85, Seed: 41,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	datagen.Normalize(ds)

	model, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(41))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model: %d subspaces, avg dim %.1f, compression ratio %.1fx\n",
		len(model.Subspaces()), model.AvgDim(), model.CompressionRatio())

	// Score a mixed batch of new observations: 30 normal (perturbed data
	// points) and 10 anomalies (uniform noise).
	rng := rand.New(rand.NewSource(42))
	var batch []obs
	for i := 0; i < 30; i++ {
		p := model.Point(rng.Intn(model.N()))
		for j := range p {
			p[j] += rng.NormFloat64() * 0.002
		}
		batch = append(batch, obs{model.AnomalyScore(p), false})
	}
	for i := 0; i < 10; i++ {
		p := make([]float64, dim)
		for j := range p {
			p[j] = rng.Float64()
		}
		batch = append(batch, obs{model.AnomalyScore(p), true})
	}

	// Rank by score: the anomalies should fill the top of the list.
	sort.Slice(batch, func(a, b int) bool { return batch[a].score > batch[b].score })
	hits := 0
	for _, o := range batch[:10] {
		if o.anomaly {
			hits++
		}
	}
	fmt.Printf("top-10 by anomaly score contains %d of the 10 planted anomalies\n", hits)
	fmt.Printf("score range: anomalies >= %.4f, highest normal %.4f\n",
		batch[hits-1].score, highestNormal(batch))

	// Lossy compression: reconstruction error of a member point.
	orig := model.Point(3)
	rec, err := model.ReconstructPoint(3)
	if err != nil {
		log.Fatal(err)
	}
	var d2 float64
	for j := range orig {
		diff := rec[j] - orig[j]
		d2 += diff * diff
	}
	fmt.Printf("point 3 reconstruction error: %.5f (beta bound 0.1)\n", math.Sqrt(d2))
}

type obs struct {
	score   float64
	anomaly bool
}

func highestNormal(batch []obs) float64 {
	for _, o := range batch {
		if !o.anomaly {
			return o.score
		}
	}
	return 0
}
