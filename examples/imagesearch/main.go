// Imagesearch: content-based image retrieval over color histograms — the
// paper's motivating multimedia workload (its real-life evaluation used
// 64-d color histograms of 70,000 Corel images).
//
// The example builds a simulated histogram collection, reduces it with
// MMDR, LDR and GDR, and compares retrieval precision and query cost,
// reproducing the qualitative comparison of Figures 8b-10b in miniature.
package main

import (
	"fmt"
	"log"
	"time"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
	"mmdr/internal/index"
	"mmdr/internal/query"
)

func main() {
	const (
		nImages = 8000
		bins    = 64 // color histogram bins
		k       = 10
		queries = 40
	)

	// Simulated Corel-style histograms: sparse, skewed toward a few
	// dominant colors, loosely clustered around shared color themes.
	imgs := datagen.ColorHistogram(nImages, bins, 12, 0.15, 11)
	datagen.Normalize(imgs)
	qs := datagen.SampleQueries(imgs, queries, 0, 12)

	fmt.Printf("collection: %d images x %d color bins (%.0f%% zero attributes)\n\n",
		imgs.N, imgs.Dim, 100*datagen.Sparsity(imgs))
	fmt.Printf("%-14s %-10s %-10s %-12s %-10s\n", "method", "precision", "avg dim", "io/query", "us/query")

	for _, method := range []mmdr.Method{mmdr.MethodMMDR, mmdr.MethodLDR, mmdr.MethodGDR} {
		evaluate(imgs, qs, method, k)
	}
}

func evaluate(imgs, qs *dataset.Dataset, method mmdr.Method, k int) {
	var ctr mmdr.CostCounter
	model, err := mmdr.ReduceDataset(imgs,
		mmdr.WithMethod(method), mmdr.WithSeed(3), mmdr.WithForcedDim(12))
	if err != nil {
		log.Fatal(err)
	}
	idx, err := model.NewIndex(mmdr.WithCostCounter(&ctr))
	if err != nil {
		log.Fatal(err)
	}
	ctr.Reset()

	var precSum float64
	start := time.Now()
	for i := 0; i < qs.N; i++ {
		q := qs.Point(i)
		got := idx.KNN(q, k)
		exact := query.ExactKNN(imgs, q, k)
		precSum += query.Precision(toNeighbors(got), exact)
	}
	elapsed := time.Since(start)

	fmt.Printf("%-14s %-10.3f %-10.1f %-12.1f %-10.1f\n",
		method,
		precSum/float64(qs.N),
		model.AvgDim(),
		float64(ctr.PageIO())/float64(qs.N),
		float64(elapsed.Microseconds())/float64(qs.N))
}

func toNeighbors(ns []mmdr.Neighbor) []index.Neighbor {
	out := make([]index.Neighbor, len(ns))
	copy(out, ns)
	return out
}
