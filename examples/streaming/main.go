// Streaming: Scalable MMDR (paper §4.3) on a dataset notionally larger than
// the memory buffer. The data is consumed one stream of ε·N points at a
// time; only per-stream ellipsoid centroids stay resident, and a final
// Generate Ellipsoid pass over that Ellipsoid Array merges them — so the
// whole dataset is read exactly once, the property behind Figure 11a.
package main

import (
	"fmt"
	"log"
	"time"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/iostat"
)

func main() {
	const (
		n   = 60000
		dim = 48
	)
	cfg := datagen.CorrelatedConfig{
		N: n, Dim: dim, NumClusters: 8, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.85, Seed: 31,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	datagen.Normalize(ds)

	fmt.Printf("dataset: %d points x %d dims (%.1f MB)\n",
		n, dim, float64(n*dim*8)/(1<<20))

	// In-memory MMDR for reference.
	start := time.Now()
	plain, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	plainTime := time.Since(start)

	// Scalable MMDR: ε = 0.02 → streams of 1,200 points; the counter
	// records the simulated disk traffic.
	var ctr mmdr.CostCounter
	start = time.Now()
	streamed, err := mmdr.ReduceDataset(ds,
		mmdr.WithMethod(mmdr.MethodMMDRScalable),
		mmdr.WithSeed(1),
		mmdr.WithStreamFraction(0.02),
		mmdr.WithCostCounter(&ctr),
	)
	if err != nil {
		log.Fatal(err)
	}
	streamTime := time.Since(start)

	fmt.Printf("\n%-16s %-10s %-12s %-10s %-10s\n", "variant", "time", "subspaces", "avg dim", "outliers")
	report := func(name string, m *mmdr.Model, d time.Duration) {
		fmt.Printf("%-16s %-10v %-12d %-10.1f %-10d\n",
			name, d.Round(time.Millisecond), len(m.Subspaces()), m.AvgDim(), len(m.Outliers()))
	}
	report("in-memory", plain, plainTime)
	report("scalable", streamed, streamTime)

	scanPages := iostat.PagesForPoints(n, dim)
	fmt.Printf("\nscalable variant read %d pages — ~one sequential scan (%d pages of data; per-stream rounding adds a few)\n",
		ctr.PageIO(), scanPages)

	// The streamed model answers queries like the in-memory one.
	idx, err := streamed.NewIndex()
	if err != nil {
		log.Fatal(err)
	}
	res := idx.KNN(streamed.Point(99), 5)
	fmt.Println("\n5-NN of point 99 under the streamed model:")
	for rank, nb := range res {
		fmt.Printf("  %d. row %-6d dist %.5f\n", rank+1, nb.ID, nb.Dist)
	}
}
