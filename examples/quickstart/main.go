// Quickstart: generate a locally correlated dataset, reduce it with MMDR,
// build the extended iDistance index, and run a K-nearest-neighbor query —
// the full pipeline of the paper in ~50 lines.
package main

import (
	"fmt"
	"log"

	"mmdr"
	"mmdr/internal/datagen"
)

func main() {
	// 1. A synthetic workload: 5,000 points in 32 dimensions, organized as
	// 4 elliptical clusters that each live on a 3-dimensional subspace with
	// its own arbitrary orientation (the paper's Appendix A generator).
	cfg := datagen.CorrelatedConfig{
		N: 5000, Dim: 32, NumClusters: 4, SDim: 3,
		VarRatio: 25, ScaleDecay: 0.8, Seed: 7,
	}
	ds, _, err := cfg.Generate()
	if err != nil {
		log.Fatal(err)
	}
	datagen.Normalize(ds)

	// 2. Reduce: MMDR discovers the elliptical clusters and projects each
	// into its own low-dimensional axis system.
	model, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MMDR found %d subspaces (avg retained dim %.1f) and %d outliers\n",
		len(model.Subspaces()), model.AvgDim(), len(model.Outliers()))
	for _, s := range model.Subspaces() {
		fmt.Printf("  subspace #%d: %5d points reduced %d -> %d dims (MPE %.4f)\n",
			s.ID, s.Points, model.Dim(), s.Dim, s.MPE)
	}

	// 3. Index: one B+-tree over all subspaces (extended iDistance).
	idx, err := model.NewIndex()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Query: the 10 nearest neighbors of point 123.
	q := model.Point(123)
	for rank, n := range idx.KNN(q, 10) {
		fmt.Printf("  %2d. row %-6d dist %.5f\n", rank+1, n.ID, n.Dist)
	}

	// 5. The index is dynamic: insert a new point and find it again.
	p := model.Point(123)
	p[0] += 0.001
	id, err := idx.Insert(p)
	if err != nil {
		log.Fatal(err)
	}
	nn := idx.KNN(p, 1)
	fmt.Printf("inserted row %d; its 1-NN is row %d at distance %.6f\n", id, nn[0].ID, nn[0].Dist)
}
