// Timeseries: subsequence similarity search — another of the paper's
// motivating applications. Sliding windows over a long series become
// high-dimensional vectors; windows drawn from the same regime (a shared
// shape pattern at varying amplitude and offset) are linearly correlated,
// which is exactly the local structure MMDR exploits.
//
// The example indexes 48-dimensional windows of a multi-regime series and
// retrieves the nearest historical matches of a probe window.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"mmdr"
	"mmdr/internal/datagen"
	"mmdr/internal/dataset"
)

const (
	window  = 48   // subsequence length = vector dimensionality
	nPoints = 9000 // number of indexed windows
)

// regime is a base shape; windows are amplitude/offset-scaled noisy copies,
// so each regime forms a locally 2-3 dimensional cluster in window space.
type regime struct {
	shape []float64
}

func makeRegimes(rng *rand.Rand, n int) []regime {
	out := make([]regime, n)
	for r := range out {
		shape := make([]float64, window)
		// Random smooth shape: sum of a few sinusoids.
		for h := 1; h <= 3; h++ {
			amp := rng.NormFloat64()
			phase := rng.Float64() * 2 * math.Pi
			for t := range shape {
				shape[t] += amp * math.Sin(2*math.Pi*float64(h)*float64(t)/window+phase)
			}
		}
		out[r] = regime{shape: shape}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(21))
	regimes := makeRegimes(rng, 6)

	ds := dataset.New(nPoints, window)
	labels := make([]int, nPoints)
	for i := 0; i < nPoints; i++ {
		r := rng.Intn(len(regimes))
		labels[i] = r
		amp := 0.5 + rng.Float64()*2 // amplitude scaling
		offset := rng.NormFloat64()  // level shift
		row := ds.Point(i)
		for t := range row {
			row[t] = amp*regimes[r].shape[t] + offset + rng.NormFloat64()*0.05
		}
	}
	datagen.Normalize(ds)

	model, err := mmdr.ReduceDataset(ds, mmdr.WithSeed(5))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("indexed %d windows of length %d; MMDR kept %.1f dims on average across %d subspaces\n",
		ds.N, window, model.AvgDim(), len(model.Subspaces()))

	idx, err := model.NewIndex()
	if err != nil {
		log.Fatal(err)
	}

	// Probe with a window from regime 2 and check the regimes of the
	// retrieved matches.
	probe := -1
	for i, l := range labels {
		if l == 2 {
			probe = i
			break
		}
	}
	res := idx.KNN(model.Point(probe), 10)
	same := 0
	fmt.Printf("10 nearest matches of window %d (regime %d):\n", probe, labels[probe])
	for rank, n := range res {
		fmt.Printf("  %2d. window %-6d regime %d  dist %.5f\n", rank+1, n.ID, labels[n.ID], n.Dist)
		if labels[n.ID] == labels[probe] {
			same++
		}
	}
	fmt.Printf("%d of 10 matches come from the probe's regime\n", same)
}
