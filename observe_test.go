package mmdr_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"mmdr"
)

// TestWithTracerPhaseTree runs the full pipeline with a collector attached
// and checks the span tree has the paper's structure: a reduce root holding
// generate-ellipsoid levels (each clustering), dimensionality optimization
// with outlier separation, and a build-index span from NewIndex.
func TestWithTracerPhaseTree(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 301)
	tc := mmdr.NewTraceCollector()
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(3), mmdr.WithTracer(tc))
	if err != nil {
		t.Fatal(err)
	}
	roots := tc.Spans()
	if len(roots) == 0 {
		t.Fatal("no spans collected")
	}
	var reduce *mmdr.TraceSpan
	for _, r := range roots {
		if r.Phase == mmdr.PhaseReduce {
			reduce = r
		}
	}
	if reduce == nil {
		t.Fatalf("no %s root span", mmdr.PhaseReduce)
	}
	if reduce.Dur <= 0 {
		t.Fatal("reduce span has no duration")
	}
	gen := reduce.Find(mmdr.PhaseGenerate)
	if gen == nil {
		t.Fatal("no generate-ellipsoid span under reduce")
	}
	if gen.Find(mmdr.PhaseCluster) == nil {
		t.Fatal("no clustering span under generate-ellipsoid")
	}
	dimopt := reduce.Find(mmdr.PhaseDimOpt)
	if dimopt == nil {
		t.Fatal("no dim-opt span under reduce")
	}
	if dimopt.Find(mmdr.PhaseOutliers) == nil {
		t.Fatal("no outlier-separation span under dim-opt")
	}
	if _, ok := reduce.AttrValue("points"); !ok {
		t.Fatal("reduce span missing points attribute")
	}

	if _, err := model.NewIndex(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range tc.Spans() {
		if r.Phase == mmdr.PhaseBuildIndex {
			found = true
		}
	}
	if !found {
		t.Fatal("no build-index span after NewIndex")
	}

	var buf bytes.Buffer
	if err := tc.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	tree := buf.String()
	for _, want := range []string{"reduce", "generate-ellipsoid", "cluster", "dim-opt", "build-index"} {
		if !strings.Contains(tree, want) {
			t.Fatalf("rendered tree missing %q:\n%s", want, tree)
		}
	}
	js, err := json.Marshal(tc)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(js) || !bytes.Contains(js, []byte(`"phase"`)) {
		t.Fatalf("bad JSON export: %s", js)
	}
}

// TestWithProgress checks the lightweight callback sees every phase end with
// a sane elapsed time, and that it composes with a full tracer.
func TestWithProgress(t *testing.T) {
	data, dim := testData(t, 800, 10, 2, 302)
	var mu sync.Mutex
	seen := map[mmdr.Phase]int{}
	tc := mmdr.NewTraceCollector()
	_, err := mmdr.Reduce(data, dim, mmdr.WithSeed(4),
		mmdr.WithTracer(tc),
		mmdr.WithProgress(func(p mmdr.Phase, elapsed time.Duration) {
			mu.Lock()
			defer mu.Unlock()
			if elapsed < 0 {
				t.Errorf("negative elapsed for %s", p)
			}
			seen[p]++
		}))
	if err != nil {
		t.Fatal(err)
	}
	if seen[mmdr.PhaseReduce] != 1 {
		t.Fatalf("reduce phase reported %d times", seen[mmdr.PhaseReduce])
	}
	for _, p := range []mmdr.Phase{mmdr.PhaseGenerate, mmdr.PhaseCluster, mmdr.PhaseDimOpt} {
		if seen[p] == 0 {
			t.Fatalf("phase %s never reported", p)
		}
	}
	// Composition: the collector must have recorded the same run.
	if len(tc.Spans()) == 0 {
		t.Fatal("collector attached alongside progress saw nothing")
	}
}

// TestIndexKNNTrace exercises the public explain path end to end.
func TestIndexKNNTrace(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 303)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	q := model.Point(17)
	const k = 7
	nb, tr, err := idx.KNNTrace(q, k)
	if err != nil {
		t.Fatal(err)
	}
	plain := idx.KNN(q, k)
	if len(nb) != len(plain) {
		t.Fatalf("traced KNN returned %d, plain %d", len(nb), len(plain))
	}
	for i := range plain {
		if nb[i].ID != plain[i].ID {
			t.Fatalf("rank %d: traced %d vs plain %d", i, nb[i].ID, plain[i].ID)
		}
	}
	if tr.Candidates < k {
		t.Fatalf("%d candidates < k=%d", tr.Candidates, k)
	}
	nParts := len(model.Subspaces())
	if len(model.Outliers()) > 0 {
		nParts++
	}
	if len(tr.Partitions) != nParts {
		t.Fatalf("%d partition probes, want %d", len(tr.Partitions), nParts)
	}
	if tr.Rounds < 1 || tr.LeavesScanned < 1 {
		t.Fatalf("implausible trace: %+v", tr)
	}

	// Sequential scan cannot explain queries.
	scan := model.NewSeqScan()
	if _, _, err := scan.KNNTrace(q, k); err == nil {
		t.Fatal("expected error from KNNTrace on seq-scan")
	}
}

// TestCostCounterJSONAndMetrics covers the snapshot/export surface.
func TestCostCounterJSONAndMetrics(t *testing.T) {
	data, dim := testData(t, 600, 10, 2, 304)
	var ctr mmdr.CostCounter
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(6), mmdr.WithCostCounter(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	idx, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	idx.KNN(model.Point(0), 5)
	m := ctr.Metrics()
	if m.DistanceOps == 0 {
		t.Fatal("no distance ops recorded")
	}
	if ctr.Distances() == 0 || ctr.PageIO() == 0 {
		t.Fatal("accessors returned zero after work")
	}
	if s := ctr.String(); !strings.Contains(s, "dist=") {
		t.Fatalf("String() = %q", s)
	}
	js, err := json.Marshal(&ctr)
	if err != nil {
		t.Fatal(err)
	}
	var back mmdr.Metrics
	if err := json.Unmarshal(js, &back); err != nil {
		t.Fatal(err)
	}
	if back.DistanceOps != m.DistanceOps {
		t.Fatalf("JSON round trip: %d vs %d distance ops", back.DistanceOps, m.DistanceOps)
	}
	ctr.Reset()
	if ctr.PageIO() != 0 || ctr.Distances() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
}
