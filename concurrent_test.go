package mmdr_test

import (
	"sync"
	"testing"

	"mmdr"
)

// TestConcurrentIndex hammers a wrapped index with parallel readers and
// writers; run with -race to validate the locking discipline.
func TestConcurrentIndex(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 209)
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(9))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	idx := mmdr.Concurrent(raw)
	if idx.Name() == "" {
		t.Fatal("name")
	}

	// Insert grows the model's backing data, so points used by concurrent
	// goroutines are materialized up front (see the ConcurrentIndex doc).
	points := make([][]float64, 700)
	for i := range points {
		points[i] = model.Point(i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	// Readers.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := points[(g*37+i)%len(points)]
				if res := idx.KNN(q, 5); len(res) == 0 {
					errs <- errEmpty
					return
				}
				if _, err := idx.Range(q, 0.05); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Writers.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				p := append([]float64(nil), points[(g+i)%500]...)
				p[0] += 1e-5 * float64(i+1)
				if _, err := idx.Insert(p); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	// Deleter.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 600; i < 640; i++ {
			if _, err := idx.Delete(i); err != nil {
				errs <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestConcurrentKNNWithMetrics attaches a cost counter and a query explain
// to an index queried from many goroutines at once; with -race this pins
// down that the metrics path is synchronization-free but data-race-free.
func TestConcurrentKNNWithMetrics(t *testing.T) {
	data, dim := testData(t, 1000, 12, 2, 210)
	var ctr mmdr.CostCounter
	model, err := mmdr.Reduce(data, dim, mmdr.WithSeed(10), mmdr.WithCostCounter(&ctr))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := model.NewIndex()
	if err != nil {
		t.Fatal(err)
	}
	idx := mmdr.Concurrent(raw)
	ctr.Reset() // isolate query-time costs from build costs

	points := make([][]float64, 200)
	for i := range points {
		points[i] = model.Point(i)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				q := points[(g*31+i)%len(points)]
				if res := idx.KNN(q, 5); len(res) == 0 {
					errs <- errEmpty
					return
				}
				if _, tr, err := idx.KNNTrace(q, 5); err != nil || tr.Candidates < 5 {
					errs <- errEmpty
					return
				}
				// Concurrent snapshot while other goroutines count.
				_ = ctr.Metrics()
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	m := ctr.Metrics()
	if m.DistanceOps == 0 || m.PageReads == 0 {
		t.Fatalf("counter saw no query work: %s", ctr.String())
	}
}

var errEmpty = &emptyError{}

type emptyError struct{}

func (*emptyError) Error() string { return "empty KNN result" }
